//! The differential checks: four engine configurations against each other
//! and against the bounded brute-force baselines.
//!
//! For every scenario the harness runs the symbolic engine four ways —
//! `threads = 1` vs `threads = N`, certification on vs off — and requires
//! bit-identical outcomes and deterministic statistics across all four.
//! Where a brute-force oracle exists (the free / `HOM` / equivalence /
//! linear-order / words / trees classes, and counter machines through the
//! Fact 15 word search) it then cross-checks:
//!
//! * engine `empty` ⇒ the baseline finds **no** witness up to its bound
//!   (a baseline witness against an `empty` answer is a soundness bug);
//! * engine `nonempty` ⇒ the certified witness replays through
//!   [`System::check_run`] and is a member of the class.
//!
//! No claim is made on `resource-limit` outcomes beyond four-way equality —
//! the engine is undecided there, and the baselines stay sound either way.

use crate::scenario::{Built, BuiltClass, Scenario, ScenarioClass};
use dds_core::{Engine, EngineOptions, Outcome, SymbolicClass};
use dds_reductions::words_succ;
use dds_structure::Structure;
use dds_system::baseline::{bounded_emptiness, bounded_emptiness_relational, BaselineStats};
use dds_system::{Run, System};

/// Differential-run tuning.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Worker count of the parallel leg (the sequential leg is pinned at 1).
    pub threads: usize,
    /// Engine exploration budget per leg.
    pub max_configs: usize,
    /// Database size bound for the relational baselines.
    pub db_bound: usize,
    /// Word length bound for the word baseline.
    pub word_bound: usize,
    /// Node budget for the tree baseline.
    pub tree_bound: usize,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threads: 2,
            max_configs: 100_000,
            db_bound: 3,
            word_bound: 6,
            tree_bound: 6,
        }
    }
}

/// What one differential check established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffReport {
    /// Outcome keyword: `nonempty`, `empty`, `resource-limit`, `halts` or
    /// `open`.
    pub outcome: String,
    /// `EngineStats::configs_explored` of the agreed engine legs (for
    /// counter machines: of the Fact 15 system's run over the free
    /// successor class).
    pub configs_explored: usize,
    /// Full statistics of the agreed engine legs (`None` for counter
    /// machines, whose reported outcome comes from the bounded word
    /// search). Callers comparing a *fifth* engine configuration — the
    /// fuzz driver's lowered-spec leg — diff against this instead of
    /// re-running the built one.
    pub engine_stats: Option<dds_core::EngineStats>,
    /// A brute-force oracle ran and agreed.
    pub baseline_checked: bool,
    /// A certified witness was replayed and membership-checked.
    pub witness_certified: bool,
}

/// Builds a scenario and runs every differential check against it.
pub fn check(sc: &Scenario, opts: &DiffOptions) -> Result<DiffReport, String> {
    let built = sc.build()?;
    check_built(sc, &built, opts)
}

/// Runs every differential check against an already-built scenario.
pub fn check_built(sc: &Scenario, built: &Built, opts: &DiffOptions) -> Result<DiffReport, String> {
    match &built.class {
        BuiltClass::Counter(m) => {
            let ScenarioClass::Counter { bound, .. } = &sc.class else {
                return Err("counter class without a bounded-halt bound".into());
            };
            check_counter(m, *bound, opts)
        }
        class => {
            let system = built
                .system
                .as_ref()
                .ok_or("non-counter scenario without a system")?;
            match class {
                BuiltClass::Free(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_relational(four, system, opts, |_| true)
                }
                BuiltClass::Hom(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_relational(four, system, opts, |db| c.maps_into_template(db))
                }
                BuiltClass::Equiv(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_members(four, system, c.members_up_to(opts.db_bound), |db| {
                        c.is_member(db)
                    })
                }
                BuiltClass::Order(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_members(four, system, c.members_up_to(opts.db_bound), |db| {
                        c.is_member(db)
                    })
                }
                BuiltClass::Words(c) => {
                    let four = four_way(c, system, opts)?;
                    let oracle = dds_words::baseline::bounded_emptiness(c, system, opts.word_bound);
                    finish_with_oracle(four, system, oracle.is_some(), |_| true)
                }
                BuiltClass::Trees(c) => {
                    let four = four_way(c, system, opts)?;
                    let oracle = dds_trees::baseline::bounded_emptiness(
                        c.automaton(),
                        system,
                        opts.tree_bound,
                    );
                    finish_with_oracle(four, system, oracle.is_some(), |_| true)
                }
                BuiltClass::DataFree(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_without_oracle(four, system)
                }
                BuiltClass::DataEquiv(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_without_oracle(four, system)
                }
                BuiltClass::DataOrder(c) => {
                    let four = four_way(c, system, opts)?;
                    finish_without_oracle(four, system)
                }
                BuiltClass::Counter(_) => unreachable!("handled above"),
            }
        }
    }
}

/// The agreed result of the four engine legs.
struct FourWay {
    outcome: &'static str,
    stats: dds_core::EngineStats,
    witness: Option<(Structure, Run)>,
}

/// Runs the engine at `(1, N) × (certify, no-certify)` and checks all four
/// legs agree: identical outcome variants and deterministic statistics
/// everywhere, identical traces and witnesses within each certification
/// mode.
fn four_way<C: SymbolicClass>(
    class: &C,
    system: &System,
    opts: &DiffOptions,
) -> Result<FourWay, String> {
    let run = |threads: usize, concretize: bool| {
        Engine::new(class, system)
            .with_options(
                EngineOptions::default()
                    .threads(threads)
                    .max_configs(opts.max_configs)
                    .concretize(concretize),
            )
            .run()
    };
    let certified_seq = run(1, true);
    let certified_par = run(opts.threads, true);
    let bare_seq = run(1, false);
    let bare_par = run(opts.threads, false);

    if certified_seq != certified_par {
        return Err(format!(
            "certify legs disagree between threads=1 and threads={}:\n  {certified_seq:?}\nvs\n  {certified_par:?}",
            opts.threads
        ));
    }
    if bare_seq != bare_par {
        return Err(format!(
            "no-certify legs disagree between threads=1 and threads={}:\n  {bare_seq:?}\nvs\n  {bare_par:?}",
            opts.threads
        ));
    }
    if certified_seq.keyword() != bare_seq.keyword() || certified_seq.stats() != bare_seq.stats() {
        return Err(format!(
            "certify and no-certify legs disagree:\n  {:?} {:?}\nvs\n  {:?} {:?}",
            certified_seq.keyword(),
            certified_seq.stats(),
            bare_seq.keyword(),
            bare_seq.stats()
        ));
    }
    if bare_seq.witness().is_some() {
        return Err("no-certify leg produced a witness".into());
    }
    let outcome = certified_seq.keyword();
    let stats = *certified_seq.stats();
    let witness = match certified_seq {
        Outcome::NonEmpty { witness, .. } => witness,
        _ => None,
    };
    Ok(FourWay {
        outcome,
        stats,
        witness,
    })
}

/// Relational classes: enumerate every database up to the bound through the
/// class filter; the same predicate later membership-checks the engine's
/// certified witness.
fn finish_relational(
    four: FourWay,
    system: &System,
    opts: &DiffOptions,
    is_member: impl Fn(&Structure) -> bool,
) -> Result<DiffReport, String> {
    let bound = relational_bound(system.schema(), opts.db_bound);
    let mut stats = BaselineStats::default();
    let oracle = bounded_emptiness_relational(system, bound, &is_member, &mut stats);
    finish_with_oracle(four, system, oracle.is_some(), is_member)
}

/// The largest database size `<= max` whose exhaustive enumeration stays
/// small (`2^slots <= 4096` structures). Two binary relations at size 3
/// already mean 2^18 databases — far past what a per-iteration oracle can
/// afford — while one binary plus one unary fits exactly.
fn relational_bound(schema: &dds_structure::Schema, max: usize) -> usize {
    let mut best = 1;
    for size in 1..=max {
        let slots: usize = schema
            .relations()
            .map(|r| size.pow(schema.arity(r) as u32))
            .sum();
        if slots <= 12 {
            best = size;
        }
    }
    best
}

/// Classes with a direct member enumeration (equivalence, linear orders).
fn finish_members(
    four: FourWay,
    system: &System,
    members: Vec<Structure>,
    is_member: impl Fn(&Structure) -> bool,
) -> Result<DiffReport, String> {
    let oracle = bounded_emptiness(system, members);
    finish_with_oracle(four, system, oracle.is_some(), is_member)
}

/// Joins the four-way result with a brute-force verdict.
fn finish_with_oracle(
    four: FourWay,
    system: &System,
    oracle_found: bool,
    is_member: impl Fn(&Structure) -> bool,
) -> Result<DiffReport, String> {
    if four.outcome == "empty" && oracle_found {
        return Err(
            "soundness violation: engine says empty but the bounded baseline found a witness"
                .into(),
        );
    }
    let witness_certified = certify_witness(&four, system, is_member)?;
    Ok(DiffReport {
        outcome: four.outcome.into(),
        configs_explored: four.stats.configs_explored,
        engine_stats: Some(four.stats),
        baseline_checked: true,
        witness_certified,
    })
}

/// Four-way agreement only (no oracle for data products).
fn finish_without_oracle(four: FourWay, system: &System) -> Result<DiffReport, String> {
    let witness_certified = certify_witness(&four, system, |_| true)?;
    Ok(DiffReport {
        outcome: four.outcome.into(),
        configs_explored: four.stats.configs_explored,
        engine_stats: Some(four.stats),
        baseline_checked: false,
        witness_certified,
    })
}

/// Replays the certified witness, when one exists.
fn certify_witness(
    four: &FourWay,
    system: &System,
    is_member: impl Fn(&Structure) -> bool,
) -> Result<bool, String> {
    match &four.witness {
        None => Ok(false),
        Some((db, run)) => {
            system
                .check_run(db, run, true)
                .map_err(|e| format!("certified witness does not replay: {e:?}"))?;
            if !is_member(db) {
                return Err("certified witness database is not a member of the class".into());
            }
            Ok(true)
        }
    }
}

/// Counter machines: the direct simulation, the Fact 15 bounded word
/// search, and the engine over the free successor class must tell one
/// consistent story.
///
/// The reported outcome is the search at the *scenario's declared bound* —
/// exactly what `dds verify` will recompute when the rendered spec's
/// `bounded-halt` property replays — so an `expect` stamped from this
/// report always re-verifies. The deeper cross-checks run at a larger
/// probe bound.
fn check_counter(
    m: &dds_reductions::counter::CounterMachine,
    declared_bound: usize,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    const SIM_STEPS: usize = 64;
    const PEAK_CAP: usize = 8;
    let probe_bound = (PEAK_CAP + 1).max(declared_bound);

    let sim = m.run(SIM_STEPS);
    let declared = words_succ::bounded_check(m, declared_bound);
    let probe = words_succ::bounded_check(m, probe_bound);

    // Monotonicity: a halting word within the declared bound is also one
    // within the (no smaller) probe bound.
    if declared.is_some() && probe.is_none() {
        return Err(format!(
            "Fact 15 search is not monotone: halts at bound {declared_bound} but not at {probe_bound}"
        ));
    }
    // Direct simulation halting with small counters ⇒ the word search must
    // find a run on a line long enough to host the peak counter value.
    if sim.is_some() {
        let peak = m.peak(SIM_STEPS) as usize;
        if peak < PEAK_CAP && probe.is_none() {
            return Err(format!(
                "machine halts (peak {peak}) but the Fact 15 search up to length {probe_bound} finds nothing"
            ));
        }
    }
    // The word search replays through the explicit checker.
    let system = words_succ::fact15_system(m);
    if let Some((db, run)) = &probe {
        system
            .check_run(db, run, true)
            .map_err(|e| format!("Fact 15 witness does not replay: {e:?}"))?;
    }

    // Engine leg: the Fact 15 system over the free successor class. Lines
    // are members, so a bounded-search witness forces a non-empty engine
    // answer (the converse does not hold: cyclic successor structures may
    // accept even for diverging machines).
    let class = dds_core::FreeRelationalClass::new(words_succ::succ_schema());
    let four = four_way(&class, &system, opts)?;
    if probe.is_some() && four.outcome == "empty" {
        return Err(
            "soundness violation: Fact 15 search found a halting word but the engine says empty"
                .into(),
        );
    }
    let witness_certified = certify_witness(&four, &system, |_| true)?;
    Ok(DiffReport {
        outcome: if declared.is_some() { "halts" } else { "open" }.into(),
        configs_explored: four.stats.configs_explored,
        engine_stats: None,
        baseline_checked: true,
        witness_certified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_seeded;
    use crate::scenario::ClassKind;

    /// A light sweep: two iterations per class through the full harness.
    /// The heavy sweeps live in `dds fuzz` and the workspace property
    /// tests; this pins the harness itself against regressions.
    #[test]
    fn harness_passes_on_generated_scenarios() {
        let opts = DiffOptions::default();
        for kind in ClassKind::ALL {
            for iter in 0..2 {
                let sc = generate_seeded(kind, 7, iter, 2);
                let report = check(&sc, &opts)
                    .unwrap_or_else(|e| panic!("{kind:?} iter {iter}: {e}\n{}", sc.render()));
                assert!(!report.outcome.is_empty());
            }
        }
    }

    /// The harness rejects a scenario whose expectation machinery is fed an
    /// inconsistent system — simulated by checking a witnessed baseline
    /// against a class whose engine cannot reach it. (Constructing a real
    /// soundness bug requires one, so this instead pins the error path by
    /// feeding the counter checker a machine that halts beyond the probe.)
    #[test]
    fn counter_checker_accepts_both_polarities() {
        let halting = dds_reductions::counter::CounterMachine::count_up_down(2);
        let report = check_counter(&halting, 5, &DiffOptions::default()).unwrap();
        assert_eq!(report.outcome, "halts");
        assert!(report.witness_certified);

        let diverging = dds_reductions::counter::CounterMachine::diverges();
        let report = check_counter(&diverging, 5, &DiffOptions::default()).unwrap();
        assert_eq!(report.outcome, "open");
    }

    /// The reported outcome must track the *declared* bound (what a
    /// rendered spec's `bounded-halt` property replays), not the deeper
    /// probe bound: `count_up_down(2)` needs a 3-position line, so a
    /// declared bound of 2 reports `open` even though the machine halts.
    #[test]
    fn counter_outcome_uses_the_declared_bound() {
        let halting = dds_reductions::counter::CounterMachine::count_up_down(2);
        let report = check_counter(&halting, 2, &DiffOptions::default()).unwrap();
        assert_eq!(report.outcome, "open");
    }
}
