//! The pinned `bench/macro/` workload suite.
//!
//! E1–E10 are all sub-3ms on the interned engine — too small to steer the
//! next optimization round. This module mints a fixed set of *large*
//! scenarios (deep chains, wide layered grids, rich hom templates,
//! 100+-rule guarded systems, long counter programs) from pinned seeds.
//! `macro_json --mint` renders them under `bench/macro/` with their
//! verified outcomes stamped as `expect` lines, and the committed
//! `bench/macro_baseline.json` gates their wall-clock in CI.
//!
//! Every scenario is deterministic: the same [`macro_suite`] call always
//! returns byte-identical `.dds` renderings, so the committed corpus can be
//! re-minted and diffed at any time.
//!
//! Design notes on scale. The engine dedups configurations and memoizes
//! `(configuration, guard)` expansions, so runtime is driven by the size of
//! the *reachable canonical configuration space* times the per-expansion
//! amalgam enumeration cost, not by rule repetition. The families below
//! pull those levers deliberately:
//!
//! * **depth** — long forward chains force hundreds of BFS layers, the
//!   worst case for per-layer fan-out overhead (each layer is a
//!   synchronization point);
//! * **register count / schema width** — two registers over a binary plus
//!   several unary relations put hundreds of canonical configurations in
//!   every control state, and each fresh-point amalgam enumerates
//!   `2^optional-facts` candidates;
//! * **guard diversity** — syntactically distinct guards defeat the
//!   transition memo across rules, so 100+-rule states do real work;
//! * **skew** — grids where one state of a layer carries most of the rules
//!   leave naive per-layer scheduling idle, the exact shape the
//!   work-stealing pool exists for.

use crate::generate::{atom_pool, gen_guard, guard_vars};
use crate::rng::FuzzRng;
use crate::scenario::{DataValuesKind, Scenario, ScenarioClass, TreesDecl, WordsDecl};
use dds_reductions::counter::Instr;

/// Suite-wide base seed; every scenario derives its own stream from this
/// plus its id, so adding a scenario never re-rolls the others.
const SUITE_SEED: u64 = 0x2013_0d05;

/// One entry of the pinned macro suite.
#[derive(Clone, Debug)]
pub struct MacroScenario {
    /// Stable scenario id — doubles as the `bench/macro/<id>.dds` file stem
    /// and the baseline record id.
    pub id: String,
    /// The generated workload.
    pub scenario: Scenario,
}

/// The full pinned suite, in id order.
pub fn macro_suite() -> Vec<MacroScenario> {
    let mut out = vec![
        // Deep chains: many BFS layers, moderate width. The `false` accept
        // variants are unsatisfiable, so the search must exhaust the space.
        free_chain("chain_free_deep", 140, 1, 3, 4, true),
        free_chain("chain_free_exhaust", 180, 1, 3, 4, false),
        free_chain("chain_free_thin", 260, 1, 1, 0, true),
        free_chain("chain_free_wide", 18, 2, 2, 2, true),
        free_chain("chain_free_wide_exhaust", 14, 2, 2, 2, false),
        // Layered grids: wide layers with skewed per-state rule counts.
        free_grid("grid_free_skew", 14, 4, 10, true),
        free_grid("grid_free_dense", 10, 5, 6, true),
        free_grid("grid_free_exhaust", 8, 4, 6, false),
        // Hom templates: colored lifts multiply the configuration space by
        // template placements.
        hom_grid("hom_grid_k3", 3, 5, 3, 3, true),
        hom_grid("hom_grid_k4", 4, 4, 3, 2, true),
        hom_grid("hom_grid_k4_exhaust", 4, 3, 3, 2, false),
        hom_chain("hom_chain_k5", 5, 160, true),
        // Equivalence / linear order: fixed schemas, depth + register count
        // carry the weight.
        equiv_chain("equiv_deep", 80, 4, true),
        equiv_chain("equiv_exhaust", 60, 4, false),
        order_chain("order_deep", 130, 2, true),
        order_chain("order_exhaust", 110, 2, false),
        // Words: positions in a regular language, cyclic NFAs so chains can
        // always extend.
        words_chain("words_deep", 4, 50, 2, true),
        words_chain("words_two_reg", 5, 40, 2, true),
        words_chain("words_exhaust", 3, 30, 2, false),
        // Trees: ancestor-order walks over an unranked document language.
        trees_chain("trees_walk", 20, 2, true),
        trees_chain("trees_exhaust", 14, 2, false),
        // Data products: inner class times a dense order on values.
        data_chain("data_order_deep", 70, 1, true),
        data_chain("data_order_exhaust", 30, 2, false),
        // Counter machines: §6 reductions, long straight-line programs.
        counter_program("counter_halts", 12, true),
        counter_program("counter_open", 14, false),
    ];
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// Returns the suite entry with the given id, if any.
pub fn find(id: &str) -> Option<MacroScenario> {
    macro_suite().into_iter().find(|m| m.id == id)
}

/// Per-scenario RNG stream, keyed by the suite seed and the scenario id so
/// ids are stable under suite growth.
fn rng_for(id: &str) -> FuzzRng {
    let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        tag ^= b as u64;
        tag = tag.wrapping_mul(0x0000_0100_0000_01b3);
    }
    FuzzRng::new(SUITE_SEED ^ tag)
}

/// `s000`-style state names keep rendered rule order lexicographic.
fn sname(i: usize) -> String {
    format!("s{i:03}")
}

fn chain_states(depth: usize) -> Vec<(String, bool)> {
    let mut states: Vec<(String, bool)> = (0..depth).map(|i| (sname(i), i == 0)).collect();
    states.push(("acc".into(), false));
    states
}

/// An accept-state rule from the last chain state: satisfiable (`reach`
/// finds it on the final layer) or unsatisfiable (the search exhausts the
/// whole space and reports `empty`).
fn accept_rule(depth: usize, sat: bool, sat_guard: &str) -> (String, String, String) {
    let guard = if sat {
        sat_guard.to_string()
    } else {
        "x_old != x_old".to_string()
    };
    (sname(depth - 1), "acc".into(), guard)
}

/// A free-relational chain: `depth` states in a forward line over a schema
/// with one binary relation and `unaries` unary relations, `regs`
/// registers, plus `extra` randomly-guarded parallel rules per step.
fn free_chain(
    id: &str,
    depth: usize,
    regs: usize,
    unaries: usize,
    extra: usize,
    sat: bool,
) -> MacroScenario {
    let mut rng = rng_for(id);
    let mut relations = vec![("E".to_string(), 2)];
    for u in 0..unaries {
        relations.push((format!("u{u}"), 1));
    }
    let class = ScenarioClass::Free {
        relations: relations.clone(),
    };
    let registers: Vec<String> = ["x", "y"][..regs].iter().map(|r| r.to_string()).collect();
    let vars = guard_vars(&registers);
    let pool = atom_pool(&class);

    // Satisfiable step shapes: every configuration has a successor under
    // each of these (the free class can always extend by a fresh point).
    let mut steps: Vec<String> = vec![
        "E(x_old, x_new)".into(),
        "E(x_new, x_old)".into(),
        "E(x_old, x_new) & x_old != x_new".into(),
    ];
    for u in 0..unaries {
        steps.push(format!("E(x_old, x_new) & u{u}(x_new)"));
    }
    if regs == 2 {
        steps = steps
            .iter()
            .map(|s| format!("{s} & y_old = y_new"))
            .collect();
        steps.push("E(x_old, x_new) & E(y_old, y_new)".into());
        steps.push("E(x_old, y_new) & y_old = x_new".into());
    }

    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        for _ in 0..extra {
            if rng.chance(2, 5) {
                rules.push((sname(i), sname(i + 1), gen_guard(&mut rng, &pool, &vars, 2)));
            }
        }
    }
    let sat_guard = if regs == 2 {
        "x_old = x_new & y_old = y_new"
    } else {
        "x_old = x_new"
    };
    rules.push(accept_rule(depth, sat, sat_guard));
    scenario(id, class, registers, chain_states(depth), rules)
}

/// A layered free-relational grid: `layers × width` states, forward rules
/// only, with a deliberately skewed rule distribution — state 0 of each
/// layer carries ~`3 × extra` rules while the rest carry few.
fn free_grid(id: &str, layers: usize, width: usize, extra: usize, sat: bool) -> MacroScenario {
    let relations = vec![("E".to_string(), 2), ("u0".to_string(), 1)];
    let class = ScenarioClass::Free {
        relations: relations.clone(),
    };
    let step = "E(x_old, x_new) & y_old = y_new";
    grid(id, class, 2, layers, width, extra, step, sat)
}

/// A near-complete hom template on `n` colored elements: all non-loop
/// edges minus a random ~20%, random loops, and a non-trivial red set, so
/// relational step guards stay satisfiable from every configuration.
fn hom_template(rng: &mut FuzzRng, n: usize) -> ScenarioClass {
    let relations = vec![("E".to_string(), 2), ("red".to_string(), 1)];
    let elements: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let mut facts = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let keep = if i == j {
                rng.chance(1, 3)
            } else {
                !rng.chance(1, 5)
            };
            if keep {
                facts.push((
                    "E".to_string(),
                    vec![elements[i].clone(), elements[j].clone()],
                ));
            }
        }
    }
    for e in rng.nonempty_subset(n) {
        facts.push(("red".to_string(), vec![elements[e].clone()]));
    }
    ScenarioClass::Hom {
        relations,
        elements,
        facts,
    }
}

/// A layered grid over a hom class (see [`free_grid`]).
fn hom_grid(
    id: &str,
    template_n: usize,
    layers: usize,
    width: usize,
    extra: usize,
    sat: bool,
) -> MacroScenario {
    let mut rng = rng_for(id);
    let class = hom_template(&mut rng, template_n);
    let step = "E(x_old, x_new) & y_old = y_new";
    grid(id, class, 2, layers, width, extra, step, sat)
}

/// A deep single-register chain over a hom class.
fn hom_chain(id: &str, template_n: usize, depth: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let class = hom_template(&mut rng, template_n);
    let steps = [
        "E(x_old, x_new)",
        "E(x_new, x_old)",
        "E(x_old, x_new) & red(x_new)",
    ];
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).to_string()));
        if rng.chance(1, 3) {
            rules.push((sname(i), sname(i + 1), rng.pick(&steps).to_string()));
        }
    }
    rules.push(accept_rule(depth, sat, "x_old = x_new"));
    scenario(id, class, vec!["x".into()], chain_states(depth), rules)
}

/// The `& r_old = r_new` conjuncts carrying every register after the first
/// unchanged through a step.
fn carry_tail(registers: &[String]) -> String {
    registers[1..]
        .iter()
        .map(|r| format!(" & {r}_old = {r}_new"))
        .collect()
}

/// A deep chain over finite equivalence relations.
fn equiv_chain(id: &str, depth: usize, regs: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let registers: Vec<String> = ["x", "y", "z", "w"][..regs]
        .iter()
        .map(|r| r.to_string())
        .collect();
    let carry = carry_tail(&registers);
    let steps: Vec<String> = [
        "x_old ~ x_new",
        "!(x_old ~ x_new)",
        "x_old ~ x_new & x_old != x_new",
    ]
    .iter()
    .map(|s| format!("{s}{carry}"))
    .collect();
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        if regs >= 2 && rng.chance(1, 2) {
            let tail: String = registers[2..]
                .iter()
                .map(|r| format!(" & {r}_old = {r}_new"))
                .collect();
            rules.push((
                sname(i),
                sname(i + 1),
                format!("x_old ~ y_new & y_old = x_new{tail}"),
            ));
        }
    }
    rules.push(accept_rule(depth, sat, "x_old = x_new"));
    scenario(
        id,
        ScenarioClass::Equivalence,
        registers,
        chain_states(depth),
        rules,
    )
}

/// A deep chain over finite strict linear orders.
fn order_chain(id: &str, depth: usize, regs: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let registers: Vec<String> = ["x", "y", "z"][..regs]
        .iter()
        .map(|r| r.to_string())
        .collect();
    let carry = carry_tail(&registers);
    // No identity step: pure `=` guards collapse a state to one cheap
    // configuration, and a run of them makes a whole scenario trivial.
    let steps: Vec<String> = ["x_old < x_new", "x_new < x_old"]
        .iter()
        .map(|s| format!("{s}{carry}"))
        .collect();
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        if regs >= 2 && rng.chance(1, 2) {
            let tail: String = registers[2..]
                .iter()
                .map(|r| format!(" & {r}_old = {r}_new"))
                .collect();
            rules.push((
                sname(i),
                sname(i + 1),
                format!("x_old < y_new & y_old = x_new{tail}"),
            ));
        }
    }
    rules.push(accept_rule(depth, sat, "x_old = x_new"));
    scenario(
        id,
        ScenarioClass::LinearOrder,
        registers,
        chain_states(depth),
        rules,
    )
}

/// A cyclic `n`-state NFA over `{a, b, c}` (the cycle keeps the language
/// infinite, so position chains can always extend), plus random chords.
fn words_class(rng: &mut FuzzRng, n: usize) -> ScenarioClass {
    let letters: Vec<String> = ["a", "b", "c"].iter().map(|l| l.to_string()).collect();
    let states: Vec<(String, String)> = (0..n)
        .map(|i| (format!("n{i}"), letters[i % letters.len()].clone()))
        .collect();
    let mut edges: Vec<(String, String)> = (0..n)
        .map(|i| (format!("n{i}"), format!("n{}", (i + 1) % n)))
        .collect();
    for p in 0..n {
        for q in 0..n {
            if rng.chance(1, 4) {
                edges.push((format!("n{p}"), format!("n{q}")));
            }
        }
    }
    edges.sort();
    edges.dedup();
    ScenarioClass::Words(WordsDecl {
        letters,
        states,
        edges,
        entry: vec!["n0".into()],
        accepting: (0..n).map(|i| format!("n{i}")).collect(),
    })
}

/// A deep chain over word positions: `<` steps forward through the word,
/// letter guards constrain the landing position.
fn words_chain(id: &str, nfa_states: usize, depth: usize, regs: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let class = words_class(&mut rng, nfa_states);
    let registers: Vec<String> = ["x", "y"][..regs].iter().map(|r| r.to_string()).collect();
    let carry = if regs == 2 { " & y_old = y_new" } else { "" };
    let steps: Vec<String> = [
        "x_old < x_new",
        "x_old < x_new & a(x_new)",
        "x_old < x_new & b(x_new)",
        "x_old = x_new",
    ]
    .iter()
    .map(|s| format!("{s}{carry}"))
    .collect();
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        if regs == 2 && rng.chance(1, 2) {
            rules.push((
                sname(i),
                sname(i + 1),
                "x_old < y_new & y_old = x_new".to_string(),
            ));
        }
    }
    rules.push(accept_rule(depth, sat, "x_old = x_new"));
    scenario(id, class, registers, chain_states(depth), rules)
}

/// A descendant walk over an unranked-tree language (`r a* b` unary
/// chains, the deterministic document shape the fuzzer also falls back
/// to — deep trees exist, so proper-descendant steps stay satisfiable).
fn trees_chain(id: &str, depth: usize, regs: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let class = ScenarioClass::Trees(TreesDecl {
        labels: vec!["r".into(), "a".into(), "b".into()],
        states: vec![
            ("t0".into(), "r".into()),
            ("t1".into(), "a".into()),
            ("t2".into(), "b".into()),
        ],
        leaf: vec!["t2".into()],
        root: vec!["t0".into()],
        rightmost: vec!["t0".into(), "t1".into(), "t2".into()],
        first_child: vec![
            ("t1".into(), "t0".into()),
            ("t2".into(), "t0".into()),
            ("t1".into(), "t1".into()),
            ("t2".into(), "t1".into()),
        ],
        next_sibling: Vec::new(),
    });
    let registers: Vec<String> = ["x", "y"][..regs].iter().map(|r| r.to_string()).collect();
    let carry = carry_tail(&registers);
    let steps: Vec<String> = [
        "x_old <= x_new & x_old != x_new",
        "x_old <= x_new & x_old != x_new & a(x_new)",
        "x_new <= x_old & x_old != x_new",
        "x_old = x_new",
    ]
    .iter()
    .map(|s| format!("{s}{carry}"))
    .collect();
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        if regs == 2 && rng.chance(1, 2) {
            rules.push((
                sname(i),
                sname(i + 1),
                "x_old <= y_new & y_old = x_new".to_string(),
            ));
        }
    }
    let sat_guard = if regs == 2 {
        "x_old = x_new & y_old = y_new"
    } else {
        "x_old = x_new"
    };
    rules.push(accept_rule(depth, sat, sat_guard));
    scenario(id, class, registers, chain_states(depth), rules)
}

/// A deep chain over a data product: free graph steps whose register
/// values also climb a dense linear order (`⊗ ⟨ℚ,<⟩`).
fn data_chain(id: &str, depth: usize, regs: usize, sat: bool) -> MacroScenario {
    let mut rng = rng_for(id);
    let class = ScenarioClass::Data {
        values: DataValuesKind::RationalOrder,
        inner: Box::new(ScenarioClass::Free {
            relations: vec![("E".to_string(), 2)],
        }),
    };
    let registers: Vec<String> = ["x", "y"][..regs].iter().map(|r| r.to_string()).collect();
    let carry = carry_tail(&registers);
    // Ascending steps only: every configuration can extend upward (ℚ is
    // dense and unbounded), so the chain never starves.
    let steps: Vec<String> = [
        "E(x_old, x_new) & x_old << x_new",
        "E(x_old, x_new) & x_old != x_new",
        "E(x_new, x_old) & x_old << x_new",
    ]
    .iter()
    .map(|s| format!("{s}{carry}"))
    .collect();
    let mut rules = Vec::new();
    for i in 0..depth - 1 {
        rules.push((sname(i), sname(i + 1), rng.pick(&steps).clone()));
        if regs == 2 && rng.chance(1, 2) {
            rules.push((
                sname(i),
                sname(i + 1),
                "E(x_old, y_new) & y_old = x_new".to_string(),
            ));
        }
    }
    let sat_guard = if regs == 2 {
        "x_old = x_new & y_old = y_new"
    } else {
        "x_old = x_new"
    };
    rules.push(accept_rule(depth, sat, sat_guard));
    scenario(id, class, registers, chain_states(depth), rules)
}

/// A §6 two-counter program: pump `m` into `c0`, drain it into `c1`, then
/// halt. The halting run needs roughly `3m` steps, so the bound decides
/// the `bounded-halt` outcome: `halts` when generous, `open` when the
/// budget cannot even cover the drain loop.
fn counter_program(id: &str, m: usize, halts: bool) -> MacroScenario {
    let mut program = Vec::new();
    // 0..m: inc c0, falling through.
    for i in 0..m {
        program.push(Instr::Inc { c: 0, next: i + 1 });
    }
    // m: drain loop head; m+1: move one unit to c1 and jump back.
    let head = m;
    program.push(Instr::JzDec {
        c: 0,
        if_zero: m + 2,
        if_pos: m + 1,
    });
    program.push(Instr::Inc { c: 1, next: head });
    program.push(Instr::Halt);
    let bound = if halts { 3 * m + 2 } else { m };
    let scenario = Scenario {
        name: id.to_string(),
        class: ScenarioClass::Counter { program, bound },
        registers: Vec::new(),
        states: Vec::new(),
        accept: Vec::new(),
        rules: Vec::new(),
    };
    MacroScenario {
        id: id.to_string(),
        scenario,
    }
}

/// Shared layered-grid builder: `layers × width` states named
/// `l{layer}_{i}`, forward rules only (so BFS depth is `layers`), one
/// guaranteed-satisfiable backbone step per state, and a skewed sprinkle
/// of randomly-guarded extras concentrated on state 0 of each layer.
#[allow(clippy::too_many_arguments)]
fn grid(
    id: &str,
    class: ScenarioClass,
    regs: usize,
    layers: usize,
    width: usize,
    extra: usize,
    step: &str,
    sat: bool,
) -> MacroScenario {
    let mut rng = rng_for(id);
    let registers: Vec<String> = ["x", "y"][..regs].iter().map(|r| r.to_string()).collect();
    let vars = guard_vars(&registers);
    let pool = atom_pool(&class);
    let state = |l: usize, i: usize| format!("l{l:02}_{i}");
    let mut states: Vec<(String, bool)> = Vec::new();
    for l in 0..layers {
        for i in 0..width {
            states.push((state(l, i), l == 0 && i == 0));
        }
    }
    states.push(("acc".into(), false));
    let mut rules = Vec::new();
    for l in 0..layers - 1 {
        for i in 0..width {
            // Backbone: always-satisfiable forward step.
            rules.push((state(l, i), state(l + 1, (i + l) % width), step.to_string()));
            // Skew: the hub state carries ~3x the extras of the rest.
            let n_extra = if i == 0 { extra * 3 } else { extra.div_ceil(3) };
            for _ in 0..n_extra {
                let target = state(l + 1, rng.below(width));
                rules.push((state(l, i), target, gen_guard(&mut rng, &pool, &vars, 2)));
            }
        }
    }
    let sat_guard = if regs == 2 {
        "x_old = x_new & y_old = y_new"
    } else {
        "x_old = x_new"
    };
    for i in 0..width {
        let guard = if sat {
            sat_guard.to_string()
        } else {
            "x_old != x_old".to_string()
        };
        rules.push((state(layers - 1, i), "acc".into(), guard));
    }
    scenario(id, class, registers, states, rules)
}

fn scenario(
    id: &str,
    class: ScenarioClass,
    registers: Vec<String>,
    states: Vec<(String, bool)>,
    rules: Vec<(String, String, String)>,
) -> MacroScenario {
    MacroScenario {
        id: id.to_string(),
        scenario: Scenario {
            name: id.to_string(),
            class,
            registers,
            states,
            accept: vec!["acc".into()],
            rules,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_sorted() {
        let a = macro_suite();
        let b = macro_suite();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.scenario.render(), y.scenario.render());
        }
        let ids: Vec<&str> = a.iter().map(|m| m.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "suite must be in id order");
    }

    #[test]
    fn suite_has_at_least_twenty_scenarios_with_unique_ids() {
        let suite = macro_suite();
        assert!(suite.len() >= 20, "issue demands >= 20 macro scenarios");
        let mut ids: Vec<&str> = suite.iter().map(|m| m.id.as_str()).collect();
        ids.dedup();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn every_scenario_builds() {
        for m in macro_suite() {
            m.scenario
                .build()
                .unwrap_or_else(|e| panic!("{} fails to build: {e}", m.id));
        }
    }

    #[test]
    fn find_returns_suite_entries() {
        assert!(find("chain_free_deep").is_some());
        assert!(find("no_such_scenario").is_none());
    }
}
