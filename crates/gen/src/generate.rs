//! Seeded random scenario generation, one generator per class family.
//!
//! Everything here is a pure function of the [`FuzzRng`] stream: the same
//! `(seed, class, iteration)` triple yields the same [`Scenario`] on every
//! machine, which is what makes `dds fuzz --seed` replayable and the CI
//! smoke job pinnable.
//!
//! Generators only emit *valid* scenarios: schemas are well-formed, rules
//! reference declared states, word/tree automata are re-rolled (bounded
//! rejection sampling with a deterministic fallback) until their language
//! is non-empty within the baseline bound, and counter programs only jump
//! to real locations.

use crate::rng::FuzzRng;
use crate::scenario::{ClassKind, DataValuesKind, Scenario, ScenarioClass, TreesDecl, WordsDecl};
use dds_reductions::counter::Instr;
use dds_trees::baseline::language_nonempty as tree_language_nonempty;
use dds_words::baseline::language_nonempty as word_language_nonempty;
use dds_words::WordClass;

/// Upper bound used when probing generated word/tree languages for
/// non-emptiness; the differential baselines use the same bound, so every
/// generated automaton has at least one member the brute force can reach.
pub const LANGUAGE_PROBE_BOUND: usize = 6;

/// Generates the scenario for `(seed, kind, iteration)` — the entry point
/// the fuzz driver and the property tests share.
pub fn generate_seeded(kind: ClassKind, seed: u64, iteration: u64, max_size: usize) -> Scenario {
    let tag = ClassKind::ALL.iter().position(|&k| k == kind).unwrap() as u64;
    let mut rng = FuzzRng::for_case(seed, tag, iteration);
    generate(kind, &mut rng, max_size)
}

/// Generates one scenario of the given class from an RNG stream.
/// `max_size` in `1..=3` scales registers, states, rules and guard width.
pub fn generate(kind: ClassKind, rng: &mut FuzzRng, max_size: usize) -> Scenario {
    let max_size = max_size.clamp(1, 3);
    let name = format!("fuzz_{}", kind.keyword().replace('-', "_"));
    if kind == ClassKind::Counter {
        return Scenario {
            name,
            class: gen_counter(rng, max_size),
            registers: Vec::new(),
            states: Vec::new(),
            accept: Vec::new(),
            rules: Vec::new(),
        };
    }

    let class = match kind {
        ClassKind::Free => gen_free(rng),
        ClassKind::Hom => gen_hom(rng),
        ClassKind::Equivalence => ScenarioClass::Equivalence,
        ClassKind::LinearOrder => ScenarioClass::LinearOrder,
        ClassKind::Words => gen_words(rng),
        ClassKind::Trees => gen_trees(rng),
        ClassKind::Data => gen_data(rng),
        ClassKind::Counter => unreachable!("handled above"),
    };

    // Tree patterns are exponential in the register count (a 2k-pointed
    // pattern per configuration); every other class takes two registers in
    // stride, but tree scenarios stay single-register so one unlucky seed
    // cannot eat half a minute of engine time.
    let reg_cap = if kind == ClassKind::Trees { 1 } else { 2 };
    let num_regs = rng.range(1, max_size.min(reg_cap));
    let registers: Vec<String> = ["x", "y"][..num_regs]
        .iter()
        .map(|r| r.to_string())
        .collect();
    let num_states = rng.range(2, 2 + max_size);
    let states: Vec<(String, bool)> = (0..num_states).map(|i| (format!("s{i}"), i == 0)).collect();
    let accept = vec![states[num_states - 1].0.clone()];

    // A chain s0 -> s1 -> .. guarantees multi-rule paths to the accepting
    // state; extra random rules add branching and loops.
    let atoms = atom_pool(&class);
    let vars = guard_vars(&registers);
    let width = 1 + max_size.min(2);
    let mut rules = Vec::new();
    for i in 0..num_states - 1 {
        rules.push((
            format!("s{i}"),
            format!("s{}", i + 1),
            gen_guard(rng, &atoms, &vars, width),
        ));
    }
    for _ in 0..rng.range(0, max_size) {
        let from = rng.below(num_states);
        let to = rng.below(num_states);
        rules.push((
            format!("s{from}"),
            format!("s{to}"),
            gen_guard(rng, &atoms, &vars, width),
        ));
    }

    Scenario {
        name,
        class,
        registers,
        states,
        accept,
        rules,
    }
}

/// The guard-variable names of a register list (`x` → `x_old`, `x_new`).
pub(crate) fn guard_vars(registers: &[String]) -> Vec<String> {
    registers
        .iter()
        .flat_map(|r| [format!("{r}_old"), format!("{r}_new")])
        .collect()
}

/// What one guard atom may mention, per class family.
#[derive(Debug)]
pub(crate) enum AtomPool {
    /// Relation atoms over declared `(name, arity)` relations.
    Relational(Vec<(String, usize)>),
    /// `v ~ w` atoms.
    Equivalence,
    /// `v < w` atoms.
    Order,
    /// Unary letter atoms plus the position order `<`.
    Letters(Vec<String>),
    /// Unary label atoms plus the ancestor order `<=`.
    Labels(Vec<String>),
    /// Inner atoms plus a data comparison (`~` or `<<`).
    Data(Box<AtomPool>, &'static str),
}

pub(crate) fn atom_pool(class: &ScenarioClass) -> AtomPool {
    match class {
        ScenarioClass::Free { relations } | ScenarioClass::Hom { relations, .. } => {
            AtomPool::Relational(relations.clone())
        }
        ScenarioClass::Equivalence => AtomPool::Equivalence,
        ScenarioClass::LinearOrder => AtomPool::Order,
        ScenarioClass::Words(d) => AtomPool::Letters(d.letters.clone()),
        ScenarioClass::Trees(d) => AtomPool::Labels(d.labels.clone()),
        ScenarioClass::Data { values, inner } => {
            AtomPool::Data(Box::new(atom_pool(inner)), values.symbol())
        }
        ScenarioClass::Counter { .. } => unreachable!("counter machines have no guards"),
    }
}

/// One guard: a conjunction of `1..=width` literals.
pub(crate) fn gen_guard(
    rng: &mut FuzzRng,
    pool: &AtomPool,
    vars: &[String],
    width: usize,
) -> String {
    let n = rng.range(1, width);
    let parts: Vec<String> = (0..n).map(|_| gen_literal(rng, pool, vars)).collect();
    parts.join(" & ")
}

fn gen_literal(rng: &mut FuzzRng, pool: &AtomPool, vars: &[String]) -> String {
    let v = |rng: &mut FuzzRng| rng.pick(vars).clone();
    match pool {
        AtomPool::Relational(relations) => {
            let atom = if rng.chance(7, 10) {
                let (name, arity) = rng.pick(relations);
                let args: Vec<String> = (0..*arity).map(|_| v(rng)).collect();
                format!("{name}({})", args.join(", "))
            } else {
                format!("{} = {}", v(rng), v(rng))
            };
            if rng.chance(1, 4) {
                format!("!({atom})")
            } else {
                atom
            }
        }
        AtomPool::Equivalence => {
            let atom = if rng.chance(3, 5) {
                format!("{} ~ {}", v(rng), v(rng))
            } else {
                format!("{} = {}", v(rng), v(rng))
            };
            if rng.chance(1, 4) {
                format!("!({atom})")
            } else {
                atom
            }
        }
        AtomPool::Order => match rng.below(5) {
            0 | 1 => format!("{} < {}", v(rng), v(rng)),
            2 => format!("{} = {}", v(rng), v(rng)),
            3 => format!("{} != {}", v(rng), v(rng)),
            _ => format!("!({} < {})", v(rng), v(rng)),
        },
        AtomPool::Letters(letters) => match rng.below(5) {
            0 | 1 => format!("{}({})", rng.pick(letters), v(rng)),
            2 | 3 => format!("{} < {}", v(rng), v(rng)),
            _ => format!("{} = {}", v(rng), v(rng)),
        },
        AtomPool::Labels(labels) => match rng.below(6) {
            0 | 1 => format!("{}({})", rng.pick(labels), v(rng)),
            2 | 3 => format!("{} <= {}", v(rng), v(rng)),
            4 => format!("{} != {}", v(rng), v(rng)),
            _ => format!("{} = {}", v(rng), v(rng)),
        },
        AtomPool::Data(inner, sym) => {
            if rng.chance(7, 10) {
                gen_literal(rng, inner, vars)
            } else {
                format!("{} {sym} {}", v(rng), v(rng))
            }
        }
    }
}

/// A small relational schema: one binary relation, sometimes a unary one.
/// A second *binary* relation is deliberately off the table: together with
/// two registers (4-pointed configurations) it multiplies the per-transition
/// amalgam enumeration and the canonical-configuration space enough that a
/// single unlucky scenario can eat minutes of engine time — the fuzzer's
/// job is many small scenarios, not one enormous one.
fn gen_schema(rng: &mut FuzzRng) -> Vec<(String, usize)> {
    let mut relations = vec![("E".to_string(), 2)];
    if rng.chance(2, 3) {
        relations.push(("red".to_string(), 1));
    }
    relations
}

fn gen_free(rng: &mut FuzzRng) -> ScenarioClass {
    ScenarioClass::Free {
        relations: gen_schema(rng),
    }
}

fn gen_hom(rng: &mut FuzzRng) -> ScenarioClass {
    let relations = gen_schema(rng);
    let n = rng.range(1, 3);
    let elements: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let mut facts = Vec::new();
    for (name, arity) in &relations {
        // Every tuple over the template joins with ~1/2 probability, so
        // templates range from fact-free (nothing holds anywhere) to
        // near-complete (close to the free class).
        let tuples = n.pow(*arity as u32);
        for t in 0..tuples {
            if rng.chance(1, 2) {
                let args: Vec<String> = (0..*arity)
                    .map(|i| elements[(t / n.pow(i as u32)) % n].clone())
                    .collect();
                facts.push((name.clone(), args));
            }
        }
    }
    ScenarioClass::Hom {
        relations,
        elements,
        facts,
    }
}

fn gen_words(rng: &mut FuzzRng) -> ScenarioClass {
    for _ in 0..24 {
        let num_letters = rng.range(1, 3);
        let letters: Vec<String> = ["a", "b", "c"][..num_letters]
            .iter()
            .map(|l| l.to_string())
            .collect();
        let num_states = rng.range(1, 4);
        let states: Vec<(String, String)> = (0..num_states)
            .map(|i| (format!("n{i}"), rng.pick(&letters).clone()))
            .collect();
        let mut edges = Vec::new();
        for p in 0..num_states {
            for q in 0..num_states {
                if rng.chance(1, 2) {
                    edges.push((format!("n{p}"), format!("n{q}")));
                }
            }
        }
        let entry: Vec<String> = rng
            .nonempty_subset(num_states)
            .into_iter()
            .map(|i| format!("n{i}"))
            .collect();
        let accepting: Vec<String> = rng
            .nonempty_subset(num_states)
            .into_iter()
            .map(|i| format!("n{i}"))
            .collect();
        let decl = WordsDecl {
            letters,
            states,
            edges,
            entry,
            accepting,
        };
        if let Some(nfa) = decl.build() {
            if word_language_nonempty(&WordClass::new(nfa), LANGUAGE_PROBE_BOUND) {
                return ScenarioClass::Words(decl);
            }
        }
    }
    // Deterministic fallback: (ab)+, which is never empty.
    ScenarioClass::Words(WordsDecl {
        letters: vec!["a".into(), "b".into()],
        states: vec![("n0".into(), "a".into()), ("n1".into(), "b".into())],
        edges: vec![("n0".into(), "n1".into()), ("n1".into(), "n0".into())],
        entry: vec!["n0".into()],
        accepting: vec!["n1".into()],
    })
}

fn gen_trees(rng: &mut FuzzRng) -> ScenarioClass {
    for _ in 0..24 {
        let num_labels = rng.range(1, 3);
        let labels: Vec<String> = ["r", "a", "b"][..num_labels]
            .iter()
            .map(|l| l.to_string())
            .collect();
        let num_states = rng.range(1, 3);
        let states: Vec<(String, String)> = (0..num_states)
            .map(|i| (format!("t{i}"), rng.pick(&labels).clone()))
            .collect();
        let name_set = |rng: &mut FuzzRng| -> Vec<String> {
            rng.nonempty_subset(num_states)
                .into_iter()
                .map(|i| format!("t{i}"))
                .collect()
        };
        // Exactly one root and one leaf state: dense root/leaf sets multiply
        // the engine's per-transition tree-pattern enumeration by orders of
        // magnitude (a 5-config search over an every-state-is-a-leaf
        // automaton was measured at ~4 s), and real document schemas are
        // single-rooted with distinguished leaf kinds anyway. The rightmost
        // set stays an arbitrary non-empty subset.
        let leaf = vec![format!("t{}", rng.below(num_states))];
        let root = vec![format!("t{}", rng.below(num_states))];
        let rightmost = name_set(rng);
        let mut first_child = Vec::new();
        let mut next_sibling = Vec::new();
        for p in 0..num_states {
            for q in 0..num_states {
                if rng.chance(1, 3) {
                    first_child.push((format!("t{p}"), format!("t{q}")));
                }
                if rng.chance(1, 4) {
                    next_sibling.push((format!("t{p}"), format!("t{q}")));
                }
            }
        }
        let decl = TreesDecl {
            labels,
            states,
            leaf,
            root,
            rightmost,
            first_child,
            next_sibling,
        };
        if tree_language_nonempty(&decl.build(), LANGUAGE_PROBE_BOUND) {
            return ScenarioClass::Trees(decl);
        }
    }
    // Deterministic fallback: unary chains r a* b.
    ScenarioClass::Trees(TreesDecl {
        labels: vec!["r".into(), "a".into(), "b".into()],
        states: vec![
            ("t0".into(), "r".into()),
            ("t1".into(), "a".into()),
            ("t2".into(), "b".into()),
        ],
        leaf: vec!["t2".into()],
        root: vec!["t0".into()],
        rightmost: vec!["t0".into(), "t1".into(), "t2".into()],
        first_child: vec![
            ("t1".into(), "t0".into()),
            ("t2".into(), "t0".into()),
            ("t1".into(), "t1".into()),
            ("t2".into(), "t1".into()),
        ],
        next_sibling: Vec::new(),
    })
}

fn gen_data(rng: &mut FuzzRng) -> ScenarioClass {
    let inner = match rng.below(3) {
        0 => gen_free(rng),
        1 => ScenarioClass::Equivalence,
        _ => ScenarioClass::LinearOrder,
    };
    // `⊗/⊙ ⟨ℕ,=⟩` compares with `~`, which the equivalence class already
    // claims for itself — only the rational-order products compose with it.
    let values = if inner == ScenarioClass::Equivalence {
        *rng.pick(&[
            DataValuesKind::RationalOrder,
            DataValuesKind::RationalOrderInjective,
        ])
    } else {
        *rng.pick(&DataValuesKind::ALL)
    };
    ScenarioClass::Data {
        values,
        inner: Box::new(inner),
    }
}

fn gen_counter(rng: &mut FuzzRng, max_size: usize) -> ScenarioClass {
    let len = rng.range(2, 2 + 2 * max_size);
    let program: Vec<Instr> = (0..len)
        .map(|_| match rng.below(5) {
            0 | 1 => Instr::Inc {
                c: rng.below(2),
                next: rng.below(len),
            },
            2 | 3 => Instr::JzDec {
                c: rng.below(2),
                if_zero: rng.below(len),
                if_pos: rng.below(len),
            },
            _ => Instr::Halt,
        })
        .collect();
    ScenarioClass::Counter {
        program,
        bound: rng.range(3, 3 + max_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_generates_buildable_scenarios() {
        for kind in ClassKind::ALL {
            for iter in 0..20 {
                for size in 1..=3 {
                    let sc = generate_seeded(kind, 0xDD5, iter, size);
                    assert_eq!(sc.class.kind(), kind);
                    let built = sc
                        .build()
                        .unwrap_or_else(|e| panic!("{kind:?} iter {iter} size {size}: {e}"));
                    if kind != ClassKind::Counter {
                        let sys = built.system.expect("non-counter scenarios have systems");
                        assert!(!sys.initial().is_empty());
                        assert!(!sys.accepting().is_empty());
                        assert!(!sys.rules().is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for kind in ClassKind::ALL {
            let a = generate_seeded(kind, 99, 4, 2);
            let b = generate_seeded(kind, 99, 4, 2);
            assert_eq!(a, b);
            let c = generate_seeded(kind, 100, 4, 2);
            // Different seeds virtually always differ; equality here would
            // indicate the stream ignores the seed.
            assert_ne!(a, c, "{kind:?} ignored the seed");
        }
    }
}
