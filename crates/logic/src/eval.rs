//! Formula evaluation against a finite structure.
//!
//! `A ⊨_val φ` from §2: the formula holds in structure `A` under the
//! valuation `val` of its free variables. Existential quantifiers are
//! evaluated by iterating over the (finite) domain — this is the *reference*
//! semantics used by the explicit model checker and by tests; the symbolic
//! engine only ever evaluates quantifier-free guards.

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::Term;
use dds_structure::{Element, Structure};

/// Evaluates a term under a partial environment (indexed by variable).
pub fn eval_term(t: &Term, s: &Structure, env: &[Option<Element>]) -> Result<Element, LogicError> {
    match t {
        Term::Var(v) => env
            .get(v.index())
            .copied()
            .flatten()
            .ok_or(LogicError::UnboundVariable(v.0)),
        Term::App(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_term(a, s, env)?);
            }
            s.try_apply(*f, &vals)
                .ok_or_else(|| LogicError::Kind(format!("{f:?}")))
        }
    }
}

/// Evaluates a formula under a total valuation of its free variables.
///
/// The slice `val` assigns `val[i]` to variable `i`; it must cover every
/// free variable. Bound variables may exceed the slice length.
pub fn eval(f: &Formula, s: &Structure, val: &[Element]) -> Result<bool, LogicError> {
    let mut env: Vec<Option<Element>> = val.iter().map(|&e| Some(e)).collect();
    eval_env(f, s, &mut env)
}

fn eval_env(
    f: &Formula,
    s: &Structure,
    env: &mut Vec<Option<Element>>,
) -> Result<bool, LogicError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Eq(a, b) => Ok(eval_term(a, s, env)? == eval_term(b, s, env)?),
        Formula::Rel(r, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_term(a, s, env)?);
            }
            Ok(s.holds(*r, &vals))
        }
        Formula::Not(inner) => Ok(!eval_env(inner, s, env)?),
        Formula::And(fs) => {
            for sub in fs {
                if !eval_env(sub, s, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for sub in fs {
                if eval_env(sub, s, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(vs, body) => {
            // Grow the environment to cover the bound block.
            let needed = vs.iter().map(|v| v.index() + 1).max().unwrap_or(0);
            if env.len() < needed {
                env.resize(needed, None);
            }
            let saved: Vec<Option<Element>> = vs.iter().map(|v| env[v.index()]).collect();
            let found = try_all(s, vs, 0, env, body)?;
            for (v, old) in vs.iter().zip(saved) {
                env[v.index()] = old;
            }
            Ok(found)
        }
    }
}

fn try_all(
    s: &Structure,
    vs: &[crate::term::Var],
    pos: usize,
    env: &mut Vec<Option<Element>>,
    body: &Formula,
) -> Result<bool, LogicError> {
    if pos == vs.len() {
        return eval_env(body, s, env);
    }
    for e in s.elements() {
        env[vs[pos].index()] = Some(e);
        if try_all(s, vs, pos + 1, env, body)? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;
    use dds_structure::Schema;

    #[test]
    fn evaluates_atoms_and_connectives() {
        let mut sc = Schema::new();
        let e = sc.add_relation("E", 2).unwrap();
        let schema = sc.finish();
        let mut g = Structure::new(schema, 2);
        g.add_fact(e, &[Element(0), Element(1)]).unwrap();

        let f = Formula::and(vec![
            Formula::rel_vars(e, &[Var(0), Var(1)]),
            Formula::negate(Formula::var_eq(Var(0), Var(1))),
        ]);
        assert!(eval(&f, &g, &[Element(0), Element(1)]).unwrap());
        assert!(!eval(&f, &g, &[Element(1), Element(0)]).unwrap());
        assert!(matches!(
            eval(&f, &g, &[Element(0)]),
            Err(LogicError::UnboundVariable(1))
        ));
    }

    #[test]
    fn evaluates_function_terms() {
        let mut sc = Schema::new();
        let f = sc.add_function("f", 1).unwrap();
        let schema = sc.finish();
        let mut a = Structure::new(schema, 2);
        a.set_func(f, &[Element(0)], Element(1)).unwrap();
        a.set_func(f, &[Element(1)], Element(1)).unwrap();
        // f(f(x)) = f(x) at x=0 (both give e1)
        let phi = Formula::Eq(
            Term::app(f, vec![Term::app(f, vec![Term::var(Var(0))])]),
            Term::app(f, vec![Term::var(Var(0))]),
        );
        assert!(eval(&phi, &a, &[Element(0)]).unwrap());
        // f(x) = x fails at 0, holds at 1
        let fix = Formula::Eq(Term::app(f, vec![Term::var(Var(0))]), Term::var(Var(0)));
        assert!(!eval(&fix, &a, &[Element(0)]).unwrap());
        assert!(eval(&fix, &a, &[Element(1)]).unwrap());
    }

    #[test]
    fn existential_iterates_domain() {
        let mut sc = Schema::new();
        let e = sc.add_relation("E", 2).unwrap();
        let schema = sc.finish();
        let mut g = Structure::new(schema, 3);
        g.add_fact(e, &[Element(0), Element(2)]).unwrap();
        g.add_fact(e, &[Element(2), Element(1)]).unwrap();
        // exists z. E(x, z) & E(z, y)  — a path of length 2 from x to y
        let phi = Formula::Exists(
            vec![Var(2)],
            Box::new(Formula::and(vec![
                Formula::rel_vars(e, &[Var(0), Var(2)]),
                Formula::rel_vars(e, &[Var(2), Var(1)]),
            ])),
        );
        assert!(eval(&phi, &g, &[Element(0), Element(1)]).unwrap());
        assert!(!eval(&phi, &g, &[Element(1), Element(0)]).unwrap());
        // Environment restored: free use of v2 afterwards is unbound.
        let and = Formula::and(vec![phi, Formula::var_eq(Var(0), Var(0))]);
        assert!(eval(&and, &g, &[Element(0), Element(1)]).unwrap());
    }

    #[test]
    fn nested_existentials() {
        let mut sc = Schema::new();
        let e = sc.add_relation("E", 2).unwrap();
        let schema = sc.finish();
        let mut g = Structure::new(schema, 2);
        g.add_fact(e, &[Element(0), Element(1)]).unwrap();
        // exists a b. E(a, b)
        let phi = Formula::Exists(
            vec![Var(0), Var(1)],
            Box::new(Formula::rel_vars(e, &[Var(0), Var(1)])),
        );
        assert!(eval(&phi, &g, &[]).unwrap());
        let empty = Structure::new(g.schema().clone(), 2);
        assert!(!eval(&phi, &empty, &[]).unwrap());
    }
}
