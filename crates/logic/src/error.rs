//! Error type for formula construction, parsing and transformation.

use std::fmt;

/// Errors raised by the logic crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogicError {
    /// Parse error with position and message.
    Parse {
        /// Byte offset into the input.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A name could not be resolved to a variable or symbol.
    Unresolved(String),
    /// Symbol used with wrong arity.
    Arity {
        /// Symbol name.
        symbol: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A relation symbol appeared in term position or vice versa.
    Kind(String),
    /// An existential quantifier appears under a negation, so the formula is
    /// not an existential formula in the sense of Fact 2.
    NotExistential,
    /// Evaluation referenced a variable with no value.
    UnboundVariable(u32),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            LogicError::Unresolved(name) => write!(f, "unresolved name `{name}`"),
            LogicError::Arity {
                symbol,
                expected,
                got,
            } => write!(f, "`{symbol}` expects {expected} arguments, got {got}"),
            LogicError::Kind(name) => write!(f, "`{name}` used with the wrong symbol kind"),
            LogicError::NotExistential => {
                write!(
                    f,
                    "existential quantifier under negation: not an existential formula"
                )
            }
            LogicError::UnboundVariable(v) => write!(f, "unbound variable v{v}"),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(LogicError::NotExistential
            .to_string()
            .contains("existential"));
        assert!(LogicError::Unresolved("zz".into())
            .to_string()
            .contains("zz"));
    }
}
