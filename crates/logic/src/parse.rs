//! A small concrete syntax for guards, used by builders, examples and tests.
//!
//! Grammar (precedence low → high: `|`, `&`, `!`):
//!
//! ```text
//! formula  := or
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary | 'exists' ident+ '.' or | primary
//! primary  := 'true' | 'false' | '(' formula ')'
//!           | RelName '(' term, .. ')'                 (relation atom)
//!           | term ('=' | '!=' | InfixRel) term        (equality / infix atom)
//! term     := ident ('(' term, .. ')')?                (variable, constant or
//!                                                       function application)
//! ```
//!
//! Identifiers are resolved first as variables (via the caller-supplied
//! resolver — `dds-system` maps `x_old`/`x_new` register names), then as
//! schema symbols. Any binary relation in the schema named `<`, `<=`, `~`,
//! `<<` or `doc` can be written infix; `!=` abbreviates a negated equality.
//! `exists` introduces fresh variable indices starting at the caller-chosen
//! base (systems pass `2k` so quantified variables never clash with register
//! variables).

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::{Term, Var};
use dds_structure::{Schema, SymbolKind};

/// Tokens of the guard language.
#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Neq,
    And,
    Or,
    Not,
    Infix(String),
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, LogicError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            '&' => {
                out.push((i, Tok::And));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Or));
                i += 1;
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            '~' => {
                out.push((i, Tok::Infix("~".into())));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((i, Tok::Neq));
                    i += 2;
                } else {
                    out.push((i, Tok::Not));
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((i, Tok::Infix("<=".into())));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    out.push((i, Tok::Infix("<<".into())));
                    i += 2;
                } else {
                    out.push((i, Tok::Infix("<".into())));
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'\'')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_owned())));
            }
            other => {
                return Err(LogicError::Parse {
                    at: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a, R: Fn(&str) -> Option<Var>> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    schema: &'a Schema,
    resolve: R,
    /// Stack of (name, var) for quantifier-bound names.
    scope: Vec<(String, Var)>,
    next_fresh: u32,
}

impl<'a, R: Fn(&str) -> Option<Var>> Parser<'a, R> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(i, _)| *i)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), LogicError> {
        let at = self.at();
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            other => Err(LogicError::Parse {
                at,
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LogicError> {
        Err(LogicError::Parse {
            at: self.at(),
            msg: msg.into(),
        })
    }

    fn formula(&mut self) -> Result<Formula, LogicError> {
        let mut parts = vec![self.and_expr()?];
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            parts.push(self.and_expr()?);
        }
        Ok(Formula::or(parts))
    }

    fn and_expr(&mut self) -> Result<Formula, LogicError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Tok::And) {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(Formula::and(parts))
    }

    fn unary(&mut self) -> Result<Formula, LogicError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::negate(self.unary()?))
            }
            Some(Tok::Ident(name)) if name == "exists" => {
                self.bump();
                let mut names = Vec::new();
                while let Some(Tok::Ident(n)) = self.peek() {
                    names.push(n.clone());
                    self.bump();
                }
                if names.is_empty() {
                    return self.err("`exists` needs at least one variable");
                }
                self.expect(&Tok::Dot, "`.` after exists variables")?;
                let depth = self.scope.len();
                let mut vars = Vec::with_capacity(names.len());
                for n in names {
                    let v = Var(self.next_fresh);
                    self.next_fresh += 1;
                    self.scope.push((n, v));
                    vars.push(v);
                }
                let body = self.formula()?;
                self.scope.truncate(depth);
                Ok(Formula::Exists(vars, Box::new(body)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, LogicError> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) if name == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(name)) if name == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen, "closing `)`")?;
                Ok(f)
            }
            Some(Tok::Ident(name)) => {
                // Relation atom `R(..)` takes priority when the name is a
                // relation symbol followed by `(`.
                let is_rel_app = self.lookup_relation(&name).is_some()
                    && self.toks.get(self.pos + 1).map(|(_, t)| t) == Some(&Tok::LParen)
                    && self.resolve_var(&name).is_none();
                if is_rel_app {
                    self.bump();
                    let rel = self.lookup_relation(&name).expect("checked above");
                    self.expect(&Tok::LParen, "`(`")?;
                    let args = self.term_list()?;
                    self.expect(&Tok::RParen, "closing `)`")?;
                    let want = self.schema.arity(rel);
                    if args.len() != want {
                        return Err(LogicError::Arity {
                            symbol: name,
                            expected: want,
                            got: args.len(),
                        });
                    }
                    return Ok(Formula::Rel(rel, args));
                }
                self.comparison()
            }
            _ => self.err("expected a formula"),
        }
    }

    fn comparison(&mut self) -> Result<Formula, LogicError> {
        let lhs = self.term()?;
        match self.bump() {
            Some(Tok::Eq) => Ok(Formula::Eq(lhs, self.term()?)),
            Some(Tok::Neq) => Ok(Formula::negate(Formula::Eq(lhs, self.term()?))),
            Some(Tok::Infix(op)) => {
                let rel = self
                    .lookup_relation(&op)
                    .ok_or_else(|| LogicError::Unresolved(op.clone()))?;
                if self.schema.arity(rel) != 2 {
                    return Err(LogicError::Arity {
                        symbol: op,
                        expected: self.schema.arity(rel),
                        got: 2,
                    });
                }
                let rhs = self.term()?;
                Ok(Formula::Rel(rel, vec![lhs, rhs]))
            }
            other => Err(LogicError::Parse {
                at: self.at(),
                msg: format!("expected `=`, `!=` or an infix relation, found {other:?}"),
            }),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, LogicError> {
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok(out);
        }
        out.push(self.term()?);
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            out.push(self.term()?);
        }
        Ok(out)
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        let at = self.at();
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            other => {
                return Err(LogicError::Parse {
                    at,
                    msg: format!("expected a term, found {other:?}"),
                })
            }
        };
        // Function application?
        if self.peek() == Some(&Tok::LParen) {
            let f = match self.schema.lookup(&name) {
                Ok(id) if self.schema.kind(id) == SymbolKind::Function => id,
                Ok(_) => return Err(LogicError::Kind(name)),
                Err(_) => return Err(LogicError::Unresolved(name)),
            };
            self.bump();
            let args = self.term_list()?;
            self.expect(&Tok::RParen, "closing `)`")?;
            let want = self.schema.arity(f);
            if args.len() != want {
                return Err(LogicError::Arity {
                    symbol: name,
                    expected: want,
                    got: args.len(),
                });
            }
            return Ok(Term::App(f, args));
        }
        // Bound name, register variable, or constant symbol.
        if let Some(v) = self.resolve_var(&name) {
            return Ok(Term::Var(v));
        }
        match self.schema.lookup(&name) {
            Ok(id)
                if self.schema.kind(id) == SymbolKind::Function && self.schema.arity(id) == 0 =>
            {
                Ok(Term::App(id, Vec::new()))
            }
            _ => Err(LogicError::Unresolved(name)),
        }
    }

    fn resolve_var(&self, name: &str) -> Option<Var> {
        // Innermost binding wins; fall back to the caller's resolver.
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .or_else(|| (self.resolve)(name))
    }

    fn lookup_relation(&self, name: &str) -> Option<dds_structure::SymbolId> {
        match self.schema.lookup(name) {
            Ok(id) if self.schema.kind(id) == SymbolKind::Relation => Some(id),
            _ => None,
        }
    }
}

/// Parses a guard formula.
///
/// * `resolve` maps free variable names (e.g. `x_old`) to [`Var`] indices;
/// * quantifier-bound variables receive fresh indices `quantifier_base,
///   quantifier_base+1, ..` in order of appearance.
pub fn parse_formula(
    src: &str,
    schema: &Schema,
    resolve: impl Fn(&str) -> Option<Var>,
    quantifier_base: u32,
) -> Result<Formula, LogicError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
        resolve,
        scope: Vec::new(),
        next_fresh: quantifier_base,
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(LogicError::Parse {
            at: p.at(),
            msg: "trailing input".into(),
        });
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use dds_structure::{Element, Structure};

    fn graph_schema() -> std::sync::Arc<Schema> {
        let mut s = Schema::new();
        s.add_relation("E", 2).unwrap();
        s.add_relation("red", 1).unwrap();
        s.add_relation("<", 2).unwrap();
        s.add_function("cca", 2).unwrap();
        s.finish()
    }

    fn vars(name: &str) -> Option<Var> {
        match name {
            "x_old" => Some(Var(0)),
            "x_new" => Some(Var(1)),
            "y_old" => Some(Var(2)),
            "y_new" => Some(Var(3)),
            _ => None,
        }
    }

    #[test]
    fn parses_example1_guard() {
        let schema = graph_schema();
        let f = parse_formula(
            "x_old = x_new & E(y_old, y_new) & red(y_new)",
            &schema,
            vars,
            8,
        )
        .unwrap();
        assert!(f.is_quantifier_free());
        assert_eq!(f.free_vars(), vec![Var(0), Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn parses_infix_and_neq() {
        let schema = graph_schema();
        let f = parse_formula("x_old < y_old & x_old != y_new", &schema, vars, 8).unwrap();
        assert_eq!(f.size(), 4); // And(rel, Not(eq)) = 1 + 1 + (1+1)
    }

    #[test]
    fn parses_function_terms() {
        let schema = graph_schema();
        let f = parse_formula("x_old = cca(x_new, y_new)", &schema, vars, 8).unwrap();
        match f {
            Formula::Eq(_, Term::App(_, args)) => assert_eq!(args.len(), 2),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_exists_with_scoping() {
        let schema = graph_schema();
        let f = parse_formula(
            "exists z w . E(x_old, z) & E(z, w) & red(w)",
            &schema,
            vars,
            8,
        )
        .unwrap();
        assert!(f.is_existential());
        assert!(!f.is_quantifier_free());
        assert_eq!(f.free_vars(), vec![Var(0)]);
        match &f {
            Formula::Exists(vs, _) => assert_eq!(vs, &[Var(8), Var(9)]),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn precedence_or_and_not() {
        let schema = graph_schema();
        // !a & b | c  ==  ((!a) & b) | c
        let f = parse_formula("!red(x_old) & red(x_new) | red(y_old)", &schema, vars, 8).unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::And(_)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        let schema = graph_schema();
        assert!(matches!(
            parse_formula("E(x_old)", &schema, vars, 8),
            Err(LogicError::Arity { .. })
        ));
        assert!(matches!(
            parse_formula("zzz = x_old", &schema, vars, 8),
            Err(LogicError::Unresolved(_))
        ));
        assert!(matches!(
            parse_formula("x_old = x_new &", &schema, vars, 8),
            Err(LogicError::Parse { .. })
        ));
        assert!(matches!(
            parse_formula("x_old = x_new x_old", &schema, vars, 8),
            Err(LogicError::Parse { .. })
        ));
    }

    #[test]
    fn parsed_formula_evaluates() {
        let schema = graph_schema();
        let e = schema.lookup("E").unwrap();
        let red = schema.lookup("red").unwrap();
        let lt = schema.lookup("<").unwrap();
        let cca = schema.lookup("cca").unwrap();
        let mut g = Structure::new(schema.clone(), 2);
        g.add_fact(e, &[Element(0), Element(1)]).unwrap();
        g.add_fact(red, &[Element(1)]).unwrap();
        g.add_fact(lt, &[Element(0), Element(1)]).unwrap();
        for a in 0..2u32 {
            for b in 0..2u32 {
                g.set_func(cca, &[Element(a), Element(b)], Element(a.min(b)))
                    .unwrap();
            }
        }
        let f = parse_formula(
            "E(x_old, y_old) & red(y_old) & x_old < y_old & cca(x_old, y_old) = x_old",
            &schema,
            vars,
            8,
        )
        .unwrap();
        let val = [Element(0), Element(0), Element(1), Element(1)];
        assert!(eval(&f, &g, &val).unwrap());
    }
}
