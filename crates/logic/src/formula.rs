//! The formula AST.

use crate::term::{Term, Var};
use dds_structure::SymbolId;
use std::fmt;

/// A first-order formula over a database schema.
///
/// Database-driven systems use the quantifier-free fragment as guards;
/// existential quantification is accepted at the surface (Fact 2) and
/// compiled away by `dds-system`. Universal quantification and negated
/// existentials are deliberately *not* representable after parsing — the
/// paper shows that boolean combinations of existential formulas already
/// make emptiness undecidable (§6.2), so keeping the type honest documents
/// the decidability frontier. (`Not` over `Exists` can be built
/// programmatically; [`Formula::is_existential`] reports whether a formula
/// stays in the decidable fragment.)
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Equality of two terms.
    Eq(Term, Term),
    /// Relation atom.
    Rel(SymbolId, Vec<Term>),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Conjunction, flattening nested `And`s and collapsing trivial cases.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Disjunction, flattening nested `Or`s and collapsing trivial cases.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Negation, collapsing double negations and constants.
    pub fn negate(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Equality atom between two variables (the most common guard atom).
    pub fn var_eq(a: Var, b: Var) -> Formula {
        Formula::Eq(Term::var(a), Term::var(b))
    }

    /// Relation atom over variables.
    pub fn rel_vars(rel: SymbolId, vars: &[Var]) -> Formula {
        Formula::Rel(rel, vars.iter().map(|&v| Term::var(v)).collect())
    }

    /// True when the formula contains no quantifier.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Eq(..) | Formula::Rel(..) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_quantifier_free),
            Formula::Exists(..) => false,
        }
    }

    /// True when the formula is *existential*: no quantifier occurs under a
    /// negation. These are exactly the guards Fact 2 can compile to
    /// quantifier-free systems.
    pub fn is_existential(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Eq(..) | Formula::Rel(..) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_existential),
            Formula::Exists(_, f) => f.is_existential(),
        }
    }

    /// Collects free variables (sorted, deduplicated).
    pub fn free_vars(&self) -> Vec<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Eq(a, b) => {
                    let mut vs = Vec::new();
                    a.collect_vars(&mut vs);
                    b.collect_vars(&mut vs);
                    out.extend(vs.into_iter().filter(|v| !bound.contains(v)));
                }
                Formula::Rel(_, args) => {
                    let mut vs = Vec::new();
                    for a in args {
                        a.collect_vars(&mut vs);
                    }
                    out.extend(vs.into_iter().filter(|v| !bound.contains(v)));
                }
                Formula::Not(inner) => go(inner, bound, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for sub in fs {
                        go(sub, bound, out);
                    }
                }
                Formula::Exists(vs, inner) => {
                    let depth = bound.len();
                    bound.extend(vs.iter().copied());
                    go(inner, bound, out);
                    bound.truncate(depth);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Largest variable index mentioned anywhere (free or bound), or `None`
    /// for closed/constant formulas. Used to pick fresh variables.
    pub fn max_var(&self) -> Option<Var> {
        fn go(f: &Formula, best: &mut Option<Var>) {
            let mut take = |vs: Vec<Var>| {
                for v in vs {
                    if best.map_or(true, |b| v > b) {
                        *best = Some(v);
                    }
                }
            };
            match f {
                Formula::True | Formula::False => {}
                Formula::Eq(a, b) => {
                    let mut vs = Vec::new();
                    a.collect_vars(&mut vs);
                    b.collect_vars(&mut vs);
                    take(vs);
                }
                Formula::Rel(_, args) => {
                    let mut vs = Vec::new();
                    for a in args {
                        a.collect_vars(&mut vs);
                    }
                    take(vs);
                }
                Formula::Not(inner) => go(inner, best),
                Formula::And(fs) | Formula::Or(fs) => {
                    for sub in fs {
                        go(sub, best);
                    }
                }
                Formula::Exists(vs, inner) => {
                    take(vs.clone());
                    go(inner, best);
                }
            }
        }
        let mut best = None;
        go(self, &mut best);
        best
    }

    /// Applies a variable renaming to free *and bound* variables. Callers
    /// must supply an injective map when binders are present.
    pub fn map_vars(&self, f: &impl Fn(Var) -> Var) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Eq(a, b) => Formula::Eq(a.map_vars(f), b.map_vars(f)),
            Formula::Rel(r, args) => Formula::Rel(*r, args.iter().map(|a| a.map_vars(f)).collect()),
            Formula::Not(inner) => Formula::Not(Box::new(inner.map_vars(f))),
            Formula::And(fs) => Formula::And(fs.iter().map(|x| x.map_vars(f)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|x| x.map_vars(f)).collect()),
            Formula::Exists(vs, inner) => Formula::Exists(
                vs.iter().map(|&v| f(v)).collect(),
                Box::new(inner.map_vars(f)),
            ),
        }
    }

    /// Number of AST nodes; used by the Fact 2 linear-time experiment (E2).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Eq(..) | Formula::Rel(..) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Exists(_, f) => 1 + f.size(),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Eq(a, b) => write!(f, "{a:?} = {b:?}"),
            Formula::Rel(r, args) => {
                write!(f, "{r:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
            Formula::Not(inner) => write!(f, "!({inner:?})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{sub:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{sub:?}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vs, inner) => {
                write!(f, "exists")?;
                for v in vs {
                    write!(f, " {v}")?;
                }
                write!(f, ". {inner:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::False]),
            Formula::False
        );
        assert_eq!(
            Formula::negate(Formula::negate(Formula::True)),
            Formula::True
        );
        let a = Formula::var_eq(Var(0), Var(1));
        assert_eq!(Formula::and(vec![a.clone()]), a);
        // Nested conjunctions flatten.
        let nested = Formula::and(vec![Formula::and(vec![a.clone(), a.clone()]), a.clone()]);
        assert_eq!(nested.size(), 4);
    }

    #[test]
    fn fragments_classified() {
        let qf = Formula::negate(Formula::var_eq(Var(0), Var(1)));
        assert!(qf.is_quantifier_free());
        assert!(qf.is_existential());
        let ex = Formula::Exists(vec![Var(5)], Box::new(Formula::var_eq(Var(5), Var(0))));
        assert!(!ex.is_quantifier_free());
        assert!(ex.is_existential());
        let bad = Formula::negate(ex.clone());
        assert!(!bad.is_existential());
        // And of existentials is existential.
        assert!(Formula::and(vec![ex.clone(), qf]).is_existential());
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::Exists(
            vec![Var(3)],
            Box::new(Formula::and(vec![
                Formula::var_eq(Var(3), Var(1)),
                Formula::var_eq(Var(0), Var(0)),
            ])),
        );
        assert_eq!(f.free_vars(), vec![Var(0), Var(1)]);
        assert_eq!(f.max_var(), Some(Var(3)));
    }
}
