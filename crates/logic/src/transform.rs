//! Formula transformations: negation normal form, atom collection, and the
//! existential prenexing that feeds Fact 2.

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::Var;

/// Negation normal form: negations pushed to the atoms. Existential
/// quantifiers are preserved when they occur positively; `Not(Exists ..)`
/// is rejected (outside the decidable fragment, §6.2).
pub fn nnf(f: &Formula) -> Result<Formula, LogicError> {
    fn pos(f: &Formula) -> Result<Formula, LogicError> {
        Ok(match f {
            Formula::True | Formula::False | Formula::Eq(..) | Formula::Rel(..) => f.clone(),
            Formula::Not(inner) => neg(inner)?,
            Formula::And(fs) => Formula::and(fs.iter().map(pos).collect::<Result<_, _>>()?),
            Formula::Or(fs) => Formula::or(fs.iter().map(pos).collect::<Result<_, _>>()?),
            Formula::Exists(vs, body) => Formula::Exists(vs.clone(), Box::new(pos(body)?)),
        })
    }
    fn neg(f: &Formula) -> Result<Formula, LogicError> {
        Ok(match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Eq(..) | Formula::Rel(..) => Formula::Not(Box::new(f.clone())),
            Formula::Not(inner) => pos(inner)?,
            Formula::And(fs) => Formula::or(fs.iter().map(neg).collect::<Result<_, _>>()?),
            Formula::Or(fs) => Formula::and(fs.iter().map(neg).collect::<Result<_, _>>()?),
            Formula::Exists(..) => return Err(LogicError::NotExistential),
        })
    }
    pos(f)
}

/// Collects the distinct atoms (equalities and relation atoms) of a formula,
/// ignoring polarity, in first-occurrence order.
pub fn atoms(f: &Formula) -> Vec<Formula> {
    fn go(f: &Formula, out: &mut Vec<Formula>) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Eq(..) | Formula::Rel(..) => {
                if !out.contains(f) {
                    out.push(f.clone());
                }
            }
            Formula::Not(inner) | Formula::Exists(_, inner) => go(inner, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    go(sub, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(f, &mut out);
    out
}

/// Pulls all existential quantifiers of an *existential* formula to the
/// front, renaming bound variables to the fresh consecutive block
/// `fresh_base, fresh_base+1, ..`.
///
/// Returns the renamed bound variables (in allocation order) and the
/// quantifier-free matrix: `φ ≡ ∃ z̄. matrix`. This is the formula-level half
/// of Fact 2; `dds-system` turns the block `z̄` into extra registers.
///
/// Correctness: `∃` commutes with `∧` and `∨` once bound names are fresh
/// (they never capture), and the input is rejected if a quantifier occurs
/// under a negation.
pub fn prenex_existential(f: &Formula, fresh_base: u32) -> Result<(Vec<Var>, Formula), LogicError> {
    if !f.is_existential() {
        return Err(LogicError::NotExistential);
    }
    let mut next = fresh_base;
    let mut block = Vec::new();
    let matrix = go(f, &mut next, &mut block)?;
    return Ok((block, matrix));

    fn go(f: &Formula, next: &mut u32, block: &mut Vec<Var>) -> Result<Formula, LogicError> {
        Ok(match f {
            Formula::True | Formula::False | Formula::Eq(..) | Formula::Rel(..) => f.clone(),
            Formula::Not(inner) => {
                // is_existential guarantees `inner` is quantifier-free.
                debug_assert!(inner.is_quantifier_free());
                f.clone()
            }
            Formula::And(fs) => Formula::and(
                fs.iter()
                    .map(|sub| go(sub, next, block))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Or(fs) => Formula::or(
                fs.iter()
                    .map(|sub| go(sub, next, block))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Exists(vs, body) => {
                // Rename this binder's whole block at once (one traversal per
                // binder keeps the compilation linear, as Fact 2 promises).
                let mut map = std::collections::HashMap::with_capacity(vs.len());
                for &v in vs {
                    let fresh = Var(*next);
                    *next += 1;
                    block.push(fresh);
                    map.insert(v, fresh);
                }
                let renamed = body.map_vars(&|u| *map.get(&u).unwrap_or(&u));
                go(&renamed, next, block)?
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::term::Term;
    use dds_structure::SymbolId;

    fn atom(i: u32, j: u32) -> Formula {
        Formula::var_eq(Var(i), Var(j))
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = Formula::negate(Formula::and(vec![atom(0, 1), Formula::negate(atom(1, 2))]));
        let g = nnf(&f).unwrap();
        // !(a & !b) == !a | b
        match g {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::Not(_)));
                assert!(matches!(parts[1], Formula::Eq(..)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Negated existential rejected.
        let bad = Formula::negate(Formula::Exists(vec![Var(9)], Box::new(atom(9, 0))));
        assert_eq!(nnf(&bad), Err(LogicError::NotExistential));
    }

    #[test]
    fn atoms_deduplicate() {
        let f = Formula::and(vec![
            atom(0, 1),
            Formula::negate(atom(0, 1)),
            Formula::Rel(SymbolId(0), vec![Term::var(Var(2))]),
        ]);
        let a = atoms(&f);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn prenex_flattens_nested_existentials() {
        // exists a. (x=a & exists b. a=b) | exists c. x=c
        let inner = Formula::Exists(vec![Var(101)], Box::new(atom(100, 101)));
        let left = Formula::Exists(
            vec![Var(100)],
            Box::new(Formula::and(vec![atom(0, 100), inner])),
        );
        let right = Formula::Exists(vec![Var(200)], Box::new(atom(0, 200)));
        let f = Formula::or(vec![left, right]);
        let (block, matrix) = prenex_existential(&f, 10).unwrap();
        assert_eq!(block, vec![Var(10), Var(11), Var(12)]);
        assert!(matrix.is_quantifier_free());
        // All renamed variables are in the fresh block.
        for v in matrix.free_vars() {
            assert!(v == Var(0) || (v.0 >= 10 && v.0 < 13), "stray var {v:?}");
        }
    }

    #[test]
    fn prenex_identity_on_qf() {
        let f = Formula::and(vec![atom(0, 1), Formula::negate(atom(2, 3))]);
        let (block, matrix) = prenex_existential(&f, 10).unwrap();
        assert!(block.is_empty());
        assert_eq!(matrix, f);
    }

    #[test]
    fn prenex_rejects_negated_quantifier() {
        let bad = Formula::negate(Formula::Exists(vec![Var(9)], Box::new(atom(9, 0))));
        assert_eq!(
            prenex_existential(&bad, 10),
            Err(LogicError::NotExistential)
        );
    }
}
