//! # dds-logic
//!
//! Quantifier-free and existential first-order formulas over database
//! schemas — the guard language of database-driven systems (§2 of the
//! paper).
//!
//! A guard is a formula over variables `X × {old, new}` built from:
//!
//! * equality `t1 = t2` between terms,
//! * relation atoms `R(t1, .., tk)`,
//! * terms made of variables and (nested) function applications — this is how
//!   the tree case queries the closest-common-ancestor function `x ∧ y`,
//! * boolean connectives, and
//! * (for the Fact 2 front-end) existential quantifiers, which
//!   `dds-system` compiles away into extra registers.
//!
//! The crate provides the AST ([`Formula`], [`Term`], [`Var`]), an evaluator
//! against [`dds_structure::Structure`] ([`eval`]), a small concrete-syntax
//! parser ([`parse`]) used by builders/examples/tests, and transformations
//! ([`transform`]): negation normal form, atom collection, variable renaming
//! and existential prenexing.
//!
//! **Paper coverage:** §2 (the guard logic: quantifier-free and existential
//! first-order formulas over a database schema) and the formula side of
//! Fact 2 (existential prenexing, compiled away by `dds-system`).

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod formula;
pub mod parse;
pub mod term;
pub mod transform;

pub use error::LogicError;
pub use formula::Formula;
pub use parse::parse_formula;
pub use term::{Term, Var};
