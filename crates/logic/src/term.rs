//! Terms: variables and function applications.

use dds_structure::SymbolId;
use std::fmt;

/// A logical variable, identified by index.
///
/// The guard convention of `dds-system` interleaves register phases:
/// register `i`'s *old* value is variable `2i` and its *new* value is
/// variable `2i+1`, so adding registers (Fact 2) never renumbers existing
/// variables. Quantified variables introduced by `exists` use indices past
/// the register block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Index into a valuation slice.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A first-order term: a variable or a function application.
///
/// Constants are applications of 0-ary function symbols.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// Application of a function symbol to argument terms.
    App(SymbolId, Vec<Term>),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(v: Var) -> Term {
        Term::Var(v)
    }

    /// Shorthand for a function application.
    pub fn app(f: SymbolId, args: Vec<Term>) -> Term {
        Term::App(f, args)
    }

    /// Collects the variables occurring in the term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Applies a variable renaming.
    pub fn map_vars(&self, f: &impl Fn(Var) -> Var) -> Term {
        match self {
            Term::Var(v) => Term::Var(f(*v)),
            Term::App(s, args) => Term::App(*s, args.iter().map(|a| a.map_vars(f)).collect()),
        }
    }

    /// Depth of nested applications (a variable has depth 0). Used by
    /// workload generators to control guard complexity.
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) => 0,
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::App(s, args) => {
                write!(f, "{s:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_and_map_vars() {
        let t = Term::app(
            SymbolId(0),
            vec![
                Term::var(Var(1)),
                Term::app(SymbolId(1), vec![Term::var(Var(3))]),
            ],
        );
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![Var(1), Var(3)]);
        let shifted = t.map_vars(&|v| Var(v.0 + 10));
        let mut vars2 = Vec::new();
        shifted.collect_vars(&mut vars2);
        assert_eq!(vars2, vec![Var(11), Var(13)]);
        assert_eq!(t.depth(), 2);
    }
}
