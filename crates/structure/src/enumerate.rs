//! Exhaustive enumeration of small structures over relational schemas.
//!
//! Used by the brute-force baselines: "enumerate every database of the class
//! up to size N and model-check the system on each" is the reference
//! implementation that the amalgamation engine is validated against
//! (and benchmarked against in experiment E10).

use crate::element::Element;
use crate::schema::Schema;
use crate::structure::{tuples_over, Structure};
use std::sync::Arc;

/// Iterator over **all** structures with a fixed domain size over a purely
/// relational schema.
///
/// Enumeration walks an odometer over the per-relation tuple subsets; each
/// relation with `t` possible tuples contributes a `t`-bit counter. The
/// total count is `2^(Σ t_r)`, so callers must keep `size` small — exactly
/// what the baselines do.
#[derive(Debug)]
pub struct StructureIter {
    schema: Arc<Schema>,
    size: usize,
    /// Flattened list of (relation, tuple) slots.
    slots: Vec<(crate::SymbolId, Vec<Element>)>,
    /// Current subset as a bitmask over `slots`; `None` when exhausted.
    mask: Option<Vec<bool>>,
}

impl StructureIter {
    /// Creates the iterator. Panics if the schema has function symbols
    /// (enumerating total functions is a different game; the symbolic tree
    /// and word classes never need it).
    pub fn new(schema: Arc<Schema>, size: usize) -> StructureIter {
        assert!(
            schema.is_relational(),
            "StructureIter requires a purely relational schema"
        );
        let elems: Vec<Element> = (0..size as u32).map(Element).collect();
        let mut slots = Vec::new();
        for r in schema.relations() {
            for t in tuples_over(&elems, schema.arity(r)) {
                slots.push((r, t));
            }
        }
        let mask = Some(vec![false; slots.len()]);
        StructureIter {
            schema,
            size,
            slots,
            mask,
        }
    }

    /// Number of structures this iterator will yield (2^#slots), as f64 to
    /// avoid overflow in diagnostics.
    pub fn total(&self) -> f64 {
        2f64.powi(self.slots.len() as i32)
    }
}

impl Iterator for StructureIter {
    type Item = Structure;

    fn next(&mut self) -> Option<Structure> {
        let mask = self.mask.as_mut()?;
        let out = {
            let mask_ref: &[bool] = mask;
            let mut s = Structure::new(self.schema.clone(), self.size);
            for (on, (r, t)) in mask_ref.iter().zip(&self.slots) {
                if *on {
                    s.add_fact(*r, t).expect("slot tuples are valid");
                }
            }
            s
        };
        // Binary increment.
        let mut pos = 0;
        loop {
            if pos == mask.len() {
                self.mask = None;
                break;
            }
            if mask[pos] {
                mask[pos] = false;
                pos += 1;
            } else {
                mask[pos] = true;
                break;
            }
        }
        Some(out)
    }
}

/// Enumerates all structures over `schema` with domain sizes `1..=max_size`
/// satisfying `filter`, calling `visit` on each. Returns the number of
/// structures visited. `visit` may stop enumeration early by returning
/// `false`.
pub fn for_each_structure(
    schema: &Arc<Schema>,
    max_size: usize,
    mut filter: impl FnMut(&Structure) -> bool,
    mut visit: impl FnMut(&Structure) -> bool,
) -> usize {
    let mut count = 0;
    for size in 1..=max_size {
        for s in StructureIter::new(schema.clone(), size) {
            if filter(&s) {
                count += 1;
                if !visit(&s) {
                    return count;
                }
            }
        }
    }
    count
}

/// All subsets of `items` (by value), smallest first. Helper for amalgam
/// enumeration; caller keeps `items` short.
pub fn subsets<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::with_capacity(1 << items.len());
    assert!(
        items.len() < 30,
        "subsets: too many items ({})",
        items.len()
    );
    for mask in 0u64..(1u64 << items.len()) {
        let mut v = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                v.push(item.clone());
            }
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn counts_structures_on_small_schema() {
        let mut s = Schema::new();
        s.add_relation("P", 1).unwrap();
        let schema = s.finish();
        // size 2, one unary relation: 2 tuples -> 4 structures
        let all: Vec<Structure> = StructureIter::new(schema.clone(), 2).collect();
        assert_eq!(all.len(), 4);
        let distinct: std::collections::BTreeSet<String> =
            all.iter().map(|x| format!("{x:?}")).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn graph_enumeration_count() {
        let mut s = Schema::new();
        s.add_relation("E", 2).unwrap();
        let schema = s.finish();
        // size 2: 4 possible directed edges -> 16 graphs
        assert_eq!(StructureIter::new(schema, 2).count(), 16);
    }

    #[test]
    fn for_each_filters_and_stops() {
        let mut s = Schema::new();
        let e = s.add_relation("E", 2).unwrap();
        let schema = s.finish();
        // Count loops-only graphs of size <= 2.
        let mut seen = 0;
        let visited = for_each_structure(
            &schema,
            2,
            |st| st.rel_tuples(e).all(|t| t[0] == t[1]),
            |_| {
                seen += 1;
                true
            },
        );
        // size1: edge (0,0) present or not -> 2; size2: loops at 0 and/or 1 -> 4
        assert_eq!(visited, 6);
        assert_eq!(seen, 6);
        // Early stop after the first hit.
        let visited = for_each_structure(&schema, 2, |_| true, |_| false);
        assert_eq!(visited, 1);
    }

    #[test]
    fn subsets_enumerates_powerset() {
        let ss = subsets(&[1, 2, 3]);
        assert_eq!(ss.len(), 8);
        assert!(ss.contains(&vec![]));
        assert!(ss.contains(&vec![1, 3]));
    }
}
