//! Schemas: finite sets of relation and function symbols with arities (§2).

use crate::error::StructureError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a symbol within a [`Schema`].
///
/// Symbol ids index into the schema's declaration list, so they are stable
/// and cheap to copy around; all structure tables are indexed by them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// Index into the schema's symbol list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether a symbol denotes a relation or a (total) function.
///
/// 0-ary functions are constants; 0-ary relations are propositional flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// Interpreted as a set of tuples over the domain.
    Relation,
    /// Interpreted as a total function `domain^arity -> domain`.
    Function,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct SymbolDecl {
    name: String,
    kind: SymbolKind,
    arity: usize,
}

/// A finite set of relation and function symbols, each with an arity.
///
/// Schemas are immutable once built and shared via [`Arc`]; every
/// [`Structure`](crate::Structure) holds a reference to its schema so that
/// operations can verify compatibility cheaply (pointer equality first, deep
/// equality as a fallback).
///
/// ```
/// use dds_structure::Schema;
/// let mut schema = Schema::new();
/// let edge = schema.add_relation("E", 2).unwrap();
/// let red = schema.add_relation("red", 1).unwrap();
/// let schema = schema.finish();
/// assert_eq!(schema.arity(edge), 2);
/// assert_eq!(schema.name(red), "red");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    symbols: Vec<SymbolDecl>,
    by_name: HashMap<String, SymbolId>,
}

impl Schema {
    /// Creates an empty schema (to be populated with `add_relation` /
    /// `add_function` and sealed with [`Schema::finish`]).
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares a relation symbol. Fails if the name is already taken.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<SymbolId, StructureError> {
        self.add(name, SymbolKind::Relation, arity)
    }

    /// Declares a (total) function symbol. Fails if the name is already taken.
    pub fn add_function(&mut self, name: &str, arity: usize) -> Result<SymbolId, StructureError> {
        self.add(name, SymbolKind::Function, arity)
    }

    fn add(
        &mut self,
        name: &str,
        kind: SymbolKind,
        arity: usize,
    ) -> Result<SymbolId, StructureError> {
        if self.by_name.contains_key(name) {
            return Err(StructureError::DuplicateSymbol(name.to_owned()));
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(SymbolDecl {
            name: name.to_owned(),
            kind,
            arity,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Seals the schema into a shared handle.
    pub fn finish(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Number of declared symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when no symbols are declared.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol's declared arity.
    pub fn arity(&self, id: SymbolId) -> usize {
        self.symbols[id.index()].arity
    }

    /// The symbol's kind (relation or function).
    pub fn kind(&self, id: SymbolId) -> SymbolKind {
        self.symbols[id.index()].kind
    }

    /// The symbol's name.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.symbols[id.index()].name
    }

    /// Looks a symbol up by name.
    pub fn lookup(&self, name: &str) -> Result<SymbolId, StructureError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StructureError::UnknownSymbol(name.to_owned()))
    }

    /// Iterates over all symbol ids in declaration order.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.symbols.len() as u32).map(SymbolId)
    }

    /// Iterates over the relation symbols in declaration order.
    pub fn relations(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.symbols()
            .filter(|id| self.kind(*id) == SymbolKind::Relation)
    }

    /// Iterates over the function symbols in declaration order.
    pub fn functions(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.symbols()
            .filter(|id| self.kind(*id) == SymbolKind::Function)
    }

    /// True when the schema declares no function symbols — the "purely
    /// relational" case of the paper, for which `blowup(n) = n` (§4.1).
    pub fn is_relational(&self) -> bool {
        self.functions().next().is_none()
    }

    /// Builds a new schema extending `self` with all symbols of `other`.
    ///
    /// Used by the data-value construction `A ⊗ λ` (§4.4), whose schema is
    /// the union of the base schema and the schema of the homogeneous
    /// structure. Fails on name clashes.
    pub fn union(&self, other: &Schema) -> Result<Schema, StructureError> {
        let mut out = self.clone();
        for id in other.symbols() {
            out.add(other.name(id), other.kind(id), other.arity(id))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut s = Schema::new();
        let e = s.add_relation("E", 2).unwrap();
        let c = s.add_function("cca", 2).unwrap();
        let k = s.add_function("origin", 0).unwrap();
        assert_eq!(s.arity(e), 2);
        assert_eq!(s.kind(c), SymbolKind::Function);
        assert_eq!(s.arity(k), 0);
        assert_eq!(s.lookup("E").unwrap(), e);
        assert!(s.lookup("nope").is_err());
        assert_eq!(s.relations().count(), 1);
        assert_eq!(s.functions().count(), 2);
        assert!(!s.is_relational());
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let mut s = Schema::new();
        s.add_relation("E", 2).unwrap();
        assert_eq!(
            s.add_function("E", 1),
            Err(StructureError::DuplicateSymbol("E".into()))
        );
    }

    #[test]
    fn union_extends_and_detects_clashes() {
        let mut a = Schema::new();
        a.add_relation("E", 2).unwrap();
        let mut b = Schema::new();
        b.add_relation("~", 2).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.lookup("~").is_ok());
        assert!(a.union(&a).is_err());
    }

    #[test]
    fn relational_flag() {
        let mut s = Schema::new();
        s.add_relation("R", 1).unwrap();
        assert!(s.is_relational());
    }
}
