//! Domain elements of a finite structure.

use std::fmt;

/// An element of the domain of a finite [`Structure`](crate::Structure).
///
/// Domains are always `{0, 1, .., n-1}`; an `Element` is just a typed index.
/// The newtype prevents accidentally mixing element indices with symbol ids
/// or register indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Element(pub u32);

impl Element {
    /// The element's index into the structure's domain.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an element from a domain index.
    #[inline]
    pub fn from_index(i: usize) -> Element {
        Element(i as u32)
    }
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_roundtrip() {
        let e = Element::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e}"), "e7");
        assert_eq!(format!("{e:?}"), "e7");
    }

    #[test]
    fn element_ordering_follows_index() {
        assert!(Element(1) < Element(2));
        assert_eq!(Element(3), Element::from_index(3));
    }
}
