//! Error type shared by the structure crate.

use std::fmt;

/// Errors raised when building or querying finite structures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructureError {
    /// A symbol name was declared twice in a schema.
    DuplicateSymbol(String),
    /// A symbol name is unknown in the schema.
    UnknownSymbol(String),
    /// A tuple's length does not match the symbol's declared arity.
    ArityMismatch {
        /// Symbol name for diagnostics.
        symbol: String,
        /// Declared arity.
        expected: usize,
        /// Length of the offending tuple.
        got: usize,
    },
    /// A relation symbol was used where a function symbol is required, or
    /// vice versa.
    KindMismatch {
        /// Symbol name for diagnostics.
        symbol: String,
    },
    /// An element index is outside the structure's domain.
    ElementOutOfRange {
        /// The offending element index.
        element: usize,
        /// Domain size.
        size: usize,
    },
    /// A function symbol has no value for some argument tuple (functions must
    /// be total on the domain).
    PartialFunction {
        /// Symbol name for diagnostics.
        symbol: String,
    },
    /// A requested subset is not closed under the structure's functions, so
    /// it does not induce a substructure.
    NotClosed {
        /// Symbol name of a function whose image leaves the subset.
        symbol: String,
    },
    /// Two structures were combined but have different schemas.
    SchemaMismatch,
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::DuplicateSymbol(name) => {
                write!(f, "symbol `{name}` declared twice")
            }
            StructureError::UnknownSymbol(name) => write!(f, "unknown symbol `{name}`"),
            StructureError::ArityMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "symbol `{symbol}` has arity {expected} but a tuple of length {got} was supplied"
            ),
            StructureError::KindMismatch { symbol } => {
                write!(
                    f,
                    "symbol `{symbol}` used with the wrong kind (relation vs function)"
                )
            }
            StructureError::ElementOutOfRange { element, size } => {
                write!(f, "element e{element} outside domain of size {size}")
            }
            StructureError::PartialFunction { symbol } => {
                write!(f, "function `{symbol}` is not total on the domain")
            }
            StructureError::NotClosed { symbol } => {
                write!(f, "subset not closed under function `{symbol}`")
            }
            StructureError::SchemaMismatch => write!(f, "structures have different schemas"),
        }
    }
}

impl std::error::Error for StructureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = StructureError::ArityMismatch {
            symbol: "E".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(StructureError::SchemaMismatch
            .to_string()
            .contains("schemas"));
    }
}
