//! Finite structures: domains plus interpretations of schema symbols (§2).

use crate::element::Element;
use crate::error::StructureError;
use crate::schema::{Schema, SymbolId, SymbolKind};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One relation's tuple set, stored flat: rows of `arity` elements
/// concatenated in lexicographic order inside a single `Vec`.
///
/// The engine's amalgamation hot path clones small structures once per
/// candidate fact subset; with per-tuple `BTreeSet<Vec<Element>>` nodes
/// every clone was a fresh allocation per tuple. Flat rows make a clone one
/// `memcpy` per relation and let [`Rows::clone_from`] reuse the existing
/// buffer, which is what the engine's scratch pool builds on. Membership is
/// a binary search over row indices; iteration is `chunks_exact` — both in
/// the same lexicographic order the `BTreeSet` produced, so canonical keys
/// and every rendered artifact are unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Rows {
    arity: usize,
    /// Concatenated rows, lexicographically sorted. Empty for `arity == 0`
    /// — a nullary relation's single empty tuple cannot occupy row space,
    /// so its presence lives in `nullary`.
    data: Vec<Element>,
    /// Whether the empty tuple is present (`arity == 0` only).
    nullary: bool,
}

impl Rows {
    fn new(arity: usize) -> Rows {
        Rows {
            arity,
            data: Vec::new(),
            nullary: false,
        }
    }

    fn len(&self) -> usize {
        match self.data.len().checked_div(self.arity) {
            Some(rows) => rows,
            None => usize::from(self.nullary),
        }
    }

    /// Row index of `tuple`, or the insertion point keeping the rows sorted.
    fn search(&self, tuple: &[Element]) -> Result<usize, usize> {
        debug_assert_eq!(tuple.len(), self.arity);
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.data[mid * self.arity..(mid + 1) * self.arity].cmp(tuple) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn contains(&self, tuple: &[Element]) -> bool {
        if self.arity == 0 {
            return self.nullary;
        }
        self.search(tuple).is_ok()
    }

    fn insert(&mut self, tuple: &[Element]) {
        if self.arity == 0 {
            self.nullary = true;
            return;
        }
        if let Err(pos) = self.search(tuple) {
            let at = pos * self.arity;
            self.data.splice(at..at, tuple.iter().copied());
        }
    }

    fn remove(&mut self, tuple: &[Element]) {
        if self.arity == 0 {
            self.nullary = false;
            return;
        }
        if let Ok(pos) = self.search(tuple) {
            let at = pos * self.arity;
            self.data.drain(at..at + self.arity);
        }
    }

    /// Iterates rows in lexicographic order.
    fn iter(&self) -> impl Iterator<Item = &[Element]> {
        let empty = if self.arity == 0 && self.nullary {
            Some(&[][..])
        } else {
            None
        };
        let rows = if self.arity > 0 {
            Some(self.data.chunks_exact(self.arity))
        } else {
            None
        };
        empty.into_iter().chain(rows.into_iter().flatten())
    }

    /// Clones `src` into `self`, reusing the row buffer's allocation.
    fn clone_from_rows(&mut self, src: &Rows) {
        self.arity = src.arity;
        self.nullary = src.nullary;
        self.data.clone_from(&src.data);
    }
}

/// A finite structure (a "database" in the paper's terminology): a domain
/// `{e0, .., e(n-1)}` together with an interpretation of every relation
/// symbol as a set of tuples and every function symbol as a total function.
///
/// Invariants maintained by the mutation API:
/// * every tuple stored respects the declared arity;
/// * every element mentioned is inside the domain.
///
/// Totality of functions is *not* enforced during construction (structures
/// are built incrementally) but is checked by [`Structure::validate`], and
/// all substructure/morphism algorithms assume it.
///
/// ```
/// use dds_structure::{Schema, Structure, Element};
/// let mut schema = Schema::new();
/// let edge = schema.add_relation("E", 2).unwrap();
/// let schema = schema.finish();
///
/// let mut g = Structure::new(schema, 3);
/// g.add_fact(edge, &[Element(0), Element(1)]).unwrap();
/// g.add_fact(edge, &[Element(1), Element(2)]).unwrap();
/// assert!(g.holds(edge, &[Element(0), Element(1)]));
/// assert!(!g.holds(edge, &[Element(1), Element(0)]));
/// ```
#[derive(PartialEq, Eq)]
pub struct Structure {
    schema: Arc<Schema>,
    size: usize,
    /// Relation tables, indexed by symbol id (empty for function symbols).
    rels: Vec<Rows>,
    /// Function tables, indexed by symbol id (empty for relation symbols).
    funcs: Vec<BTreeMap<Vec<Element>, Element>>,
}

impl Clone for Structure {
    fn clone(&self) -> Structure {
        Structure {
            schema: self.schema.clone(),
            size: self.size,
            rels: self.rels.clone(),
            funcs: self.funcs.clone(),
        }
    }

    /// Reuses `self`'s relation buffers — the reason the engine's scratch
    /// pool can produce candidate structures without allocating.
    fn clone_from(&mut self, src: &Structure) {
        self.schema = src.schema.clone();
        self.size = src.size;
        if self.rels.len() == src.rels.len() {
            for (dst, s) in self.rels.iter_mut().zip(&src.rels) {
                dst.clone_from_rows(s);
            }
        } else {
            self.rels.clone_from(&src.rels);
        }
        self.funcs.clone_from(&src.funcs);
    }
}

impl Structure {
    /// Creates a structure with `size` elements and empty interpretations.
    pub fn new(schema: Arc<Schema>, size: usize) -> Structure {
        let rels = schema
            .symbols()
            .map(|s| match schema.kind(s) {
                SymbolKind::Relation => Rows::new(schema.arity(s)),
                SymbolKind::Function => Rows::new(0),
            })
            .collect();
        let n = schema.len();
        Structure {
            schema,
            size,
            rels,
            funcs: vec![BTreeMap::new(); n],
        }
    }

    /// The structure's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of domain elements.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Iterates over the domain.
    pub fn elements(&self) -> impl Iterator<Item = Element> {
        (0..self.size as u32).map(Element)
    }

    /// True when both structures share the same schema (cheap pointer check
    /// first, deep comparison as fallback).
    pub fn same_schema(&self, other: &Structure) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema
    }

    fn check(
        &self,
        sym: SymbolId,
        tuple: &[Element],
        kind: SymbolKind,
    ) -> Result<(), StructureError> {
        if self.schema.kind(sym) != kind {
            return Err(StructureError::KindMismatch {
                symbol: self.schema.name(sym).to_owned(),
            });
        }
        if self.schema.arity(sym) != tuple.len() {
            return Err(StructureError::ArityMismatch {
                symbol: self.schema.name(sym).to_owned(),
                expected: self.schema.arity(sym),
                got: tuple.len(),
            });
        }
        for &e in tuple {
            if e.index() >= self.size {
                return Err(StructureError::ElementOutOfRange {
                    element: e.index(),
                    size: self.size,
                });
            }
        }
        Ok(())
    }

    /// Inserts a tuple into a relation.
    pub fn add_fact(&mut self, rel: SymbolId, tuple: &[Element]) -> Result<(), StructureError> {
        self.check(rel, tuple, SymbolKind::Relation)?;
        self.rels[rel.index()].insert(tuple);
        Ok(())
    }

    /// Removes a tuple from a relation (no-op when absent).
    pub fn remove_fact(&mut self, rel: SymbolId, tuple: &[Element]) -> Result<(), StructureError> {
        self.check(rel, tuple, SymbolKind::Relation)?;
        self.rels[rel.index()].remove(tuple);
        Ok(())
    }

    /// Whether a relation holds of a tuple.
    ///
    /// # Panics
    /// Panics when the symbol is not a relation of matching arity — this is a
    /// programmer error, not a data error.
    pub fn holds(&self, rel: SymbolId, tuple: &[Element]) -> bool {
        if let Err(e) = self.check(rel, tuple, SymbolKind::Relation) {
            panic!("Structure::holds: {e}");
        }
        self.rels[rel.index()].contains(tuple)
    }

    /// Defines the value of a function symbol on an argument tuple.
    pub fn set_func(
        &mut self,
        func: SymbolId,
        args: &[Element],
        value: Element,
    ) -> Result<(), StructureError> {
        self.check(func, args, SymbolKind::Function)?;
        if value.index() >= self.size {
            return Err(StructureError::ElementOutOfRange {
                element: value.index(),
                size: self.size,
            });
        }
        self.funcs[func.index()].insert(args.to_vec(), value);
        Ok(())
    }

    /// Applies a function symbol, returning `None` where undefined.
    pub fn try_apply(&self, func: SymbolId, args: &[Element]) -> Option<Element> {
        if self.check(func, args, SymbolKind::Function).is_err() {
            return None;
        }
        self.funcs[func.index()].get(args).copied()
    }

    /// Applies a function symbol.
    ///
    /// # Panics
    /// Panics when the symbol is misused or the function is undefined at
    /// `args` (structures are validated to be total before algorithms run).
    pub fn apply(&self, func: SymbolId, args: &[Element]) -> Element {
        if let Err(e) = self.check(func, args, SymbolKind::Function) {
            panic!("Structure::apply: {e}");
        }
        match self.funcs[func.index()].get(args) {
            Some(&v) => v,
            None => panic!(
                "Structure::apply: function `{}` undefined at {:?}",
                self.schema.name(func),
                args
            ),
        }
    }

    /// Iterates over the tuples of a relation in lexicographic order.
    pub fn rel_tuples(&self, rel: SymbolId) -> impl Iterator<Item = &[Element]> {
        self.rels[rel.index()].iter()
    }

    /// Number of tuples in a relation.
    pub fn rel_len(&self, rel: SymbolId) -> usize {
        self.rels[rel.index()].len()
    }

    /// Iterates over `(args, value)` entries of a function in lexicographic
    /// argument order.
    pub fn func_entries(&self, func: SymbolId) -> impl Iterator<Item = (&[Element], Element)> {
        self.funcs[func.index()]
            .iter()
            .map(|(k, &v)| (k.as_slice(), v))
    }

    /// Checks that every function symbol is total on the domain.
    pub fn validate(&self) -> Result<(), StructureError> {
        for f in self.schema.functions() {
            let arity = self.schema.arity(f);
            let expected = self.size.pow(arity as u32);
            if self.funcs[f.index()].len() != expected {
                return Err(StructureError::PartialFunction {
                    symbol: self.schema.name(f).to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Total number of relation tuples (a rough "how big is this database"
    /// measure used in diagnostics and benches).
    pub fn fact_count(&self) -> usize {
        self.rels.iter().map(|r| r.len()).sum()
    }

    // ------------------------------------------------------------------
    // Substructures (§2: induced, function-closed).
    // ------------------------------------------------------------------

    /// Closes a seed set under all function symbols and returns the closure
    /// in ascending element order.
    ///
    /// This computes the domain of the substructure *generated by* the seeds
    /// (§4.1); for purely relational schemas it just sorts and dedups.
    pub fn closure(&self, seeds: &[Element]) -> Vec<Element> {
        let mut in_set = vec![false; self.size];
        let mut worklist: Vec<Element> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            assert!(s.index() < self.size, "closure: seed out of range");
            if !in_set[s.index()] {
                in_set[s.index()] = true;
                worklist.push(s);
            }
        }
        let funcs: Vec<SymbolId> = self.schema.functions().collect();
        // Fixpoint: apply every function to every argument tuple drawn from
        // the current set. Sizes are tiny (bounded by the class blowup), so
        // the simple recompute-all loop is clear and fast enough.
        let mut changed = !worklist.is_empty();
        while changed {
            changed = false;
            let current: Vec<Element> = (0..self.size as u32)
                .map(Element)
                .filter(|e| in_set[e.index()])
                .collect();
            for &f in &funcs {
                let arity = self.schema.arity(f);
                for args in tuples_over(&current, arity) {
                    if let Some(v) = self.try_apply(f, &args) {
                        if !in_set[v.index()] {
                            in_set[v.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        (0..self.size as u32)
            .map(Element)
            .filter(|e| in_set[e.index()])
            .collect()
    }

    /// Builds the induced substructure on `subset`, which must be closed
    /// under the function symbols.
    ///
    /// Returns the substructure together with the list mapping each new
    /// element index to the original element (`result.1[new.index()] == old`).
    pub fn substructure(
        &self,
        subset: &[Element],
    ) -> Result<(Structure, Vec<Element>), StructureError> {
        let mut sorted: Vec<Element> = subset.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut old_to_new: BTreeMap<Element, Element> = BTreeMap::new();
        for (i, &e) in sorted.iter().enumerate() {
            if e.index() >= self.size {
                return Err(StructureError::ElementOutOfRange {
                    element: e.index(),
                    size: self.size,
                });
            }
            old_to_new.insert(e, Element::from_index(i));
        }
        let mut sub = Structure::new(self.schema.clone(), sorted.len());
        for r in self.schema.relations() {
            for tuple in self.rel_tuples(r) {
                if let Some(mapped) = map_tuple(tuple, &old_to_new) {
                    sub.rels[r.index()].insert(&mapped);
                }
            }
        }
        for f in self.schema.functions() {
            let arity = self.schema.arity(f);
            for args in tuples_over(&sorted, arity) {
                let v =
                    self.try_apply(f, &args)
                        .ok_or_else(|| StructureError::PartialFunction {
                            symbol: self.schema.name(f).to_owned(),
                        })?;
                let new_v = *old_to_new
                    .get(&v)
                    .ok_or_else(|| StructureError::NotClosed {
                        symbol: self.schema.name(f).to_owned(),
                    })?;
                let new_args: Vec<Element> = args.iter().map(|a| old_to_new[a]).collect();
                sub.funcs[f.index()].insert(new_args, new_v);
            }
        }
        Ok((sub, sorted))
    }

    /// The substructure *generated by* `seeds`: closure under functions, then
    /// induced restriction. Returns the substructure and the new→old element
    /// map.
    pub fn generated(&self, seeds: &[Element]) -> (Structure, Vec<Element>) {
        let closed = self.closure(seeds);
        self.substructure(&closed)
            .expect("closure is closed by construction")
    }

    // ------------------------------------------------------------------
    // Combinators.
    // ------------------------------------------------------------------

    /// Disjoint union of two structures over the same purely relational
    /// schema; elements of `other` are shifted by `self.size()`.
    pub fn disjoint_union(&self, other: &Structure) -> Result<Structure, StructureError> {
        if !self.same_schema(other) {
            return Err(StructureError::SchemaMismatch);
        }
        if let Some(f) = self.schema.functions().next() {
            // Functions on cross tuples would be undefined; the paper only
            // uses ⊎ for joint embedding, which we never need on functional
            // schemas.
            return Err(StructureError::PartialFunction {
                symbol: self.schema.name(f).to_owned(),
            });
        }
        let mut out = Structure::new(self.schema.clone(), self.size + other.size);
        for r in self.schema.relations() {
            for t in self.rel_tuples(r) {
                out.rels[r.index()].insert(t);
            }
            for t in other.rel_tuples(r) {
                let shifted: Vec<Element> = t
                    .iter()
                    .map(|e| Element::from_index(e.index() + self.size))
                    .collect();
                out.rels[r.index()].insert(&shifted);
            }
        }
        Ok(out)
    }

    /// Applies a bijective renaming of elements: `perm[old.index()] = new`.
    pub fn map_elements(&self, perm: &[Element]) -> Structure {
        assert_eq!(
            perm.len(),
            self.size,
            "map_elements: wrong permutation size"
        );
        let mut seen = vec![false; self.size];
        for &p in perm {
            assert!(
                p.index() < self.size && !seen[p.index()],
                "map_elements: not a permutation"
            );
            seen[p.index()] = true;
        }
        let mut out = Structure::new(self.schema.clone(), self.size);
        for r in self.schema.relations() {
            for t in self.rel_tuples(r) {
                let mapped: Vec<Element> = t.iter().map(|e| perm[e.index()]).collect();
                out.rels[r.index()].insert(&mapped);
            }
        }
        for f in self.schema.functions() {
            for (args, v) in self.func_entries(f) {
                let mapped: Vec<Element> = args.iter().map(|e| perm[e.index()]).collect();
                out.funcs[f.index()].insert(mapped, perm[v.index()]);
            }
        }
        out
    }

    /// Extends the domain with `extra` fresh isolated elements (no relations,
    /// functions left undefined on new tuples — callers must complete them).
    pub fn extend_domain(&self, extra: usize) -> Structure {
        let mut out = self.clone();
        out.size += extra;
        out
    }

    /// In-place variant of [`Structure::extend_domain`], for callers reusing
    /// a buffer (e.g. the amalgamation scratch pool) instead of cloning.
    pub fn extend_domain_in_place(&mut self, extra: usize) {
        self.size += extra;
    }
}

/// Maps a tuple through a partial element map; `None` if any component is
/// outside the map (used to restrict relations to a subset).
fn map_tuple(tuple: &[Element], map: &BTreeMap<Element, Element>) -> Option<Vec<Element>> {
    tuple.iter().map(|e| map.get(e).copied()).collect()
}

/// All tuples of the given arity over an element list (cartesian power, in
/// lexicographic order of index vectors). Exposed for the enumeration and
/// amalgamation modules.
pub fn tuples_over(elems: &[Element], arity: usize) -> Vec<Vec<Element>> {
    let mut out = Vec::new();
    if arity == 0 {
        out.push(Vec::new());
        return out;
    }
    if elems.is_empty() {
        return out;
    }
    let mut idx = vec![0usize; arity];
    loop {
        out.push(idx.iter().map(|&i| elems[i]).collect());
        // advance odometer
        let mut pos = arity;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < elems.len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Structure(n={}", self.size)?;
        for r in self.schema.relations() {
            if self.rel_len(r) > 0 {
                write!(f, ", {}={{", self.schema.name(r))?;
                for (i, t) in self.rel_tuples(r).enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{t:?}")?;
                }
                write!(f, "}}")?;
            }
        }
        for fun in self.schema.functions() {
            write!(f, ", {}=[", self.schema.name(fun))?;
            for (i, (args, v)) in self.func_entries(fun).enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{args:?}->{v:?}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn graph_schema() -> (Arc<Schema>, SymbolId, SymbolId) {
        let mut s = Schema::new();
        let e = s.add_relation("E", 2).unwrap();
        let red = s.add_relation("red", 1).unwrap();
        (s.finish(), e, red)
    }

    #[test]
    fn facts_roundtrip() {
        let (schema, e, red) = graph_schema();
        let mut g = Structure::new(schema, 3);
        g.add_fact(e, &[Element(0), Element(1)]).unwrap();
        g.add_fact(red, &[Element(2)]).unwrap();
        assert!(g.holds(e, &[Element(0), Element(1)]));
        assert!(!g.holds(e, &[Element(1), Element(0)]));
        assert!(g.holds(red, &[Element(2)]));
        assert_eq!(g.fact_count(), 2);
        g.remove_fact(e, &[Element(0), Element(1)]).unwrap();
        assert!(!g.holds(e, &[Element(0), Element(1)]));
    }

    #[test]
    fn arity_and_range_checked() {
        let (schema, e, _) = graph_schema();
        let mut g = Structure::new(schema, 2);
        assert!(matches!(
            g.add_fact(e, &[Element(0)]),
            Err(StructureError::ArityMismatch { .. })
        ));
        assert!(matches!(
            g.add_fact(e, &[Element(0), Element(7)]),
            Err(StructureError::ElementOutOfRange { .. })
        ));
    }

    #[test]
    fn functions_and_validation() {
        let mut s = Schema::new();
        let f = s.add_function("f", 1).unwrap();
        let schema = s.finish();
        let mut a = Structure::new(schema, 2);
        assert!(a.validate().is_err());
        a.set_func(f, &[Element(0)], Element(1)).unwrap();
        a.set_func(f, &[Element(1)], Element(1)).unwrap();
        a.validate().unwrap();
        assert_eq!(a.apply(f, &[Element(0)]), Element(1));
    }

    #[test]
    fn closure_under_functions() {
        let mut s = Schema::new();
        let f = s.add_function("f", 1).unwrap();
        let schema = s.finish();
        let mut a = Structure::new(schema, 4);
        // f: 0 -> 1 -> 2 -> 2, 3 -> 3
        a.set_func(f, &[Element(0)], Element(1)).unwrap();
        a.set_func(f, &[Element(1)], Element(2)).unwrap();
        a.set_func(f, &[Element(2)], Element(2)).unwrap();
        a.set_func(f, &[Element(3)], Element(3)).unwrap();
        assert_eq!(
            a.closure(&[Element(0)]),
            vec![Element(0), Element(1), Element(2)]
        );
        assert_eq!(a.closure(&[Element(3)]), vec![Element(3)]);
        assert_eq!(a.closure(&[]), Vec::<Element>::new());
    }

    #[test]
    fn generated_substructure_renumbers() {
        let (schema, e, red) = graph_schema();
        let mut g = Structure::new(schema, 4);
        g.add_fact(e, &[Element(1), Element(3)]).unwrap();
        g.add_fact(e, &[Element(3), Element(1)]).unwrap();
        g.add_fact(red, &[Element(3)]).unwrap();
        g.add_fact(e, &[Element(0), Element(1)]).unwrap(); // dropped: 0 outside
        let (sub, names) = g.generated(&[Element(3), Element(1)]);
        assert_eq!(sub.size(), 2);
        assert_eq!(names, vec![Element(1), Element(3)]);
        assert!(sub.holds(e, &[Element(0), Element(1)]));
        assert!(sub.holds(e, &[Element(1), Element(0)]));
        assert!(sub.holds(red, &[Element(1)]));
        assert!(!sub.holds(red, &[Element(0)]));
        assert_eq!(sub.fact_count(), 3);
    }

    #[test]
    fn substructure_requires_closed_subset() {
        let mut s = Schema::new();
        let f = s.add_function("f", 1).unwrap();
        let schema = s.finish();
        let mut a = Structure::new(schema, 2);
        a.set_func(f, &[Element(0)], Element(1)).unwrap();
        a.set_func(f, &[Element(1)], Element(1)).unwrap();
        assert!(matches!(
            a.substructure(&[Element(0)]),
            Err(StructureError::NotClosed { .. })
        ));
        assert!(a.substructure(&[Element(0), Element(1)]).is_ok());
    }

    #[test]
    fn disjoint_union_shifts() {
        let (schema, e, _) = graph_schema();
        let mut a = Structure::new(schema.clone(), 2);
        a.add_fact(e, &[Element(0), Element(1)]).unwrap();
        let mut b = Structure::new(schema, 1);
        b.add_fact(e, &[Element(0), Element(0)]).unwrap();
        let u = a.disjoint_union(&b).unwrap();
        assert_eq!(u.size(), 3);
        assert!(u.holds(e, &[Element(0), Element(1)]));
        assert!(u.holds(e, &[Element(2), Element(2)]));
        assert_eq!(u.fact_count(), 2);
    }

    #[test]
    fn map_elements_permutes() {
        let (schema, e, red) = graph_schema();
        let mut a = Structure::new(schema, 2);
        a.add_fact(e, &[Element(0), Element(1)]).unwrap();
        a.add_fact(red, &[Element(0)]).unwrap();
        let b = a.map_elements(&[Element(1), Element(0)]);
        assert!(b.holds(e, &[Element(1), Element(0)]));
        assert!(b.holds(red, &[Element(1)]));
        assert!(!b.holds(red, &[Element(0)]));
    }

    #[test]
    fn tuples_over_enumerates_cartesian_power() {
        let elems = [Element(0), Element(2)];
        let ts = tuples_over(&elems, 2);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0], vec![Element(0), Element(0)]);
        assert_eq!(ts[3], vec![Element(2), Element(2)]);
        assert_eq!(tuples_over(&elems, 0), vec![Vec::<Element>::new()]);
        assert!(tuples_over(&[], 2).is_empty());
    }
}
